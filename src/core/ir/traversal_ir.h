// Reduced-CFG intermediate representation of a recursive traversal body.
//
// The paper's compiler (section 5, built on ROSE) analyzes the traversal
// function's control-flow graph to (a) enumerate static call sets
// (section 3.2.1), (b) check pseudo-tail-recursion, (c) classify the
// traversal guided/unguided, and (d) rewrite the recursion into the
// iterative rope-stack form (section 3.2.2). This module reproduces those
// analyses over an explicit IR: blocks of statements with branch/jump/
// return terminators. Conditions, updates and argument expressions are
// opaque ids resolved by interpreter callbacks -- the analyses are purely
// structural, exactly as the paper requires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tt::ir {

using BlockId = int;
inline constexpr BlockId kNoBlock = -1;

struct Stmt {
  enum class Kind {
    kUpdate,  // update(point, node): opaque side effect `id`
    kCall,    // recurse(child_slot(node), arg_expr(arg))
    kPush,    // rope-stack push; only present in rewritten functions
  };
  Kind kind = Kind::kUpdate;
  int id = 0;  // update id, or call-site id (unique per call statement)

  // kCall / kPush operands.
  int child_slot = 0;  // which child of the current node the call targets
  // True when the *choice* of child (not the truncation) depends on point
  // state; drives the guided/unguided classification.
  bool child_point_dependent = false;
  // Argument expression id (-1: pass `arg` through unchanged). Evaluated by
  // the interpreter as arg' = arg_fn(arg_expr, arg, node).
  int arg_expr = -1;

  // Updates "pushed down" into this call by the pseudo-tail-recursion
  // restructuring (section 3.2: intervening code between two recursive
  // calls runs at the beginning of the latter call, on behalf of the
  // parent). Executed at callee entry with the *caller's* node.
  std::vector<int> deferred_updates;
};

struct Block {
  std::vector<Stmt> stmts;
  enum class Term { kReturn, kJump, kBranch } term = Term::kReturn;
  int cond = -1;  // branch condition id (opaque; evaluated per point+node)
  bool cond_point_dependent = false;
  BlockId succ_true = kNoBlock;   // jump target / branch-true
  BlockId succ_false = kNoBlock;  // branch-false
};

// A traversal function: block 0 is the entry. The CFG must be acyclic
// (recursive calls visit children; loops over children are assumed fully
// unrolled, per section 3.2.1 footnote 1).
struct TraversalFunc {
  std::string name;
  std::vector<Block> blocks;

  // Throws std::logic_error if the CFG is malformed or cyclic.
  void validate() const;
};

// One static call set: the call-site ids executed along one path, in
// execution order. Paths whose call sequences coincide are one set.
using CallSet = std::vector<int>;

}  // namespace tt::ir
