#include "core/ir/callset_analysis.h"

#include <algorithm>

namespace tt::ir {
namespace {

// Depth-first path enumeration over the (validated, acyclic) CFG. The
// reduced CFG of a traversal body is tiny -- a handful of blocks -- so
// explicit path enumeration is exact and cheap.
template <class PathFn>
void for_each_path(const TraversalFunc& f, PathFn&& fn) {
  std::vector<BlockId> path;
  auto rec = [&](auto&& self, BlockId b) -> void {
    path.push_back(b);
    const Block& blk = f.blocks[static_cast<std::size_t>(b)];
    switch (blk.term) {
      case Block::Term::kReturn:
        fn(path);
        break;
      case Block::Term::kJump:
        self(self, blk.succ_true);
        break;
      case Block::Term::kBranch:
        self(self, blk.succ_true);
        self(self, blk.succ_false);
        break;
    }
    path.pop_back();
  };
  rec(rec, 0);
}

}  // namespace

std::vector<CallSet> enumerate_call_sets(const TraversalFunc& f) {
  f.validate();
  std::vector<CallSet> sets;
  for_each_path(f, [&](const std::vector<BlockId>& path) {
    CallSet cs;
    for (BlockId b : path)
      for (const Stmt& s : f.blocks[static_cast<std::size_t>(b)].stmts)
        if (s.kind == Stmt::Kind::kCall) cs.push_back(s.id);
    if (cs.empty()) return;  // paths without calls do not form call sets
    if (std::find(sets.begin(), sets.end(), cs) == sets.end())
      sets.push_back(std::move(cs));
  });
  return sets;
}

bool is_pseudo_tail_recursive(const TraversalFunc& f) {
  f.validate();
  bool ok = true;
  for_each_path(f, [&](const std::vector<BlockId>& path) {
    bool seen_call = false;
    for (BlockId b : path)
      for (const Stmt& s : f.blocks[static_cast<std::size_t>(b)].stmts) {
        if (s.kind == Stmt::Kind::kCall)
          seen_call = true;
        else if (seen_call)
          ok = false;  // non-call work after a recursive call
      }
  });
  return ok;
}

TraversalClass classify(const TraversalFunc& f) {
  std::vector<CallSet> sets = enumerate_call_sets(f);
  if (sets.size() != 1) return TraversalClass::kGuided;
  for (const Block& b : f.blocks)
    for (const Stmt& s : b.stmts)
      if (s.kind == Stmt::Kind::kCall && s.child_point_dependent)
        return TraversalClass::kGuided;
  return TraversalClass::kUnguided;
}

AnalysisReport analyze(const TraversalFunc& f) {
  AnalysisReport r;
  r.call_sets = enumerate_call_sets(f);
  r.pseudo_tail_recursive = is_pseudo_tail_recursive(f);
  r.cls = classify(f);
  r.lockstep_eligible = r.cls == TraversalClass::kUnguided;
  return r;
}

}  // namespace tt::ir
