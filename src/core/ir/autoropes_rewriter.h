// The autoropes transformation (paper section 3.2.2) as an IR-to-IR
// rewrite: recursive call statements become rope-stack pushes emitted in
// reverse call order, and function returns become `continue`s of the
// traversal loop (implicit: the rewritten body is executed once per popped
// node by the iterative interpreter).
#pragma once

#include "core/ir/traversal_ir.h"

namespace tt::ir {

// Preconditions (throws std::invalid_argument when violated):
//  * f is pseudo-tail-recursive, and
//  * within every block, recursive calls form one trailing run of
//    statements in a return-terminated block (true of every traversal in
//    the paper -- Figures 4, 5 and 9a -- and of all five benchmarks; the
//    general restructuring of arbitrary recursion into this form is the
//    tech-report transformation, out of scope here).
//
// The result is the loop *body*: calls replaced by kPush statements in
// reversed order. Interpretation semantics: interpreter.h pops an entry,
// runs this body on it, and pushes whatever the body requests.
TraversalFunc autoropes_rewrite(const TraversalFunc& f);

}  // namespace tt::ir
