#include "core/ir/traversal_ir.h"

#include <stdexcept>
#include <vector>

namespace tt::ir {

void TraversalFunc::validate() const {
  if (blocks.empty())
    throw std::logic_error("TraversalFunc: no blocks");
  auto check_target = [&](BlockId b) {
    if (b < 0 || b >= static_cast<BlockId>(blocks.size()))
      throw std::logic_error("TraversalFunc: branch target out of range");
  };
  for (const Block& b : blocks) {
    switch (b.term) {
      case Block::Term::kReturn:
        break;
      case Block::Term::kJump:
        check_target(b.succ_true);
        break;
      case Block::Term::kBranch:
        check_target(b.succ_true);
        check_target(b.succ_false);
        break;
    }
  }
  // Cycle check: DFS with colors.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(blocks.size(), Color::kWhite);
  struct Frame {
    BlockId b;
    int edge = 0;
  };
  std::vector<Frame> stack{{0, 0}};
  color[0] = Color::kGray;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const Block& b = blocks[static_cast<std::size_t>(f.b)];
    BlockId next = kNoBlock;
    if (b.term == Block::Term::kJump && f.edge == 0)
      next = b.succ_true;
    else if (b.term == Block::Term::kBranch && f.edge == 0)
      next = b.succ_true;
    else if (b.term == Block::Term::kBranch && f.edge == 1)
      next = b.succ_false;
    if (next == kNoBlock) {
      color[static_cast<std::size_t>(f.b)] = Color::kBlack;
      stack.pop_back();
      continue;
    }
    ++f.edge;
    Color c = color[static_cast<std::size_t>(next)];
    if (c == Color::kGray)
      throw std::logic_error("TraversalFunc: CFG has a cycle");
    if (c == Color::kWhite) {
      color[static_cast<std::size_t>(next)] = Color::kGray;
      stack.push_back({next, 0});
    }
  }
}

}  // namespace tt::ir
