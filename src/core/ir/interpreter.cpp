#include "core/ir/interpreter.h"

#include <functional>
#include <stdexcept>

namespace tt::ir {
namespace {

struct PendingCall {
  NodeId node;
  std::int64_t arg;
  // Restructured functions (ptr_restructure.h) defer a caller's updates to
  // callee entry; they run with the caller's node and argument.
  std::vector<int> deferred;
  NodeId caller_node = kNullNode;
  std::int64_t caller_arg = 0;
};

// Execute f's body once for (node, arg), invoking on_call at each executed
// call/push statement *in place* -- the recursive interpreter descends
// immediately (so non-PTR functions keep true recursion semantics: work
// after a call runs after the whole subtree), the iterative one pushes.
void run_body(const TraversalFunc& f, const World& w, NodeId node,
              std::int64_t arg, std::int64_t& point_state,
              const std::function<void(const PendingCall&)>& on_call) {
  BlockId b = 0;
  for (;;) {
    const Block& blk = f.blocks[static_cast<std::size_t>(b)];
    for (const Stmt& s : blk.stmts) {
      switch (s.kind) {
        case Stmt::Kind::kUpdate:
          w.update(s.id, node, point_state, arg);
          break;
        case Stmt::Kind::kCall:
        case Stmt::Kind::kPush: {
          NodeId c = w.child(s.child_slot, node, point_state);
          if (c == kNullNode) {
            // Skipped call: its deferred updates must still run -- but in
            // program order, i.e. after any earlier call's subtree. A
            // sentinel entry (node == kNullNode) carries them through the
            // same call/push mechanism; the drivers below execute it
            // without visiting anything.
            if (!s.deferred_updates.empty())
              on_call({kNullNode, arg, s.deferred_updates, node, arg});
            break;
          }
          std::int64_t a =
              s.arg_expr < 0 ? arg : w.arg_fn(s.arg_expr, arg, node);
          on_call({c, a, s.deferred_updates, node, arg});
          break;
        }
      }
    }
    switch (blk.term) {
      case Block::Term::kReturn:
        return;
      case Block::Term::kJump:
        b = blk.succ_true;
        break;
      case Block::Term::kBranch:
        b = w.cond(blk.cond, node, point_state, arg) ? blk.succ_true
                                                     : blk.succ_false;
        break;
    }
  }
}

// Callee entry: run the updates deferred by the caller, with the caller's
// node and argument (the "on behalf of a node's parent" check of
// section 3.2).
void run_deferred(const World& w, const PendingCall& c,
                  std::int64_t& point_state) {
  for (int id : c.deferred)
    w.update(id, c.caller_node, point_state, c.caller_arg);
}

}  // namespace

std::vector<TraceEntry> interpret_recursive(const TraversalFunc& f,
                                            const World& w, NodeId root,
                                            std::int64_t arg0,
                                            std::int64_t& point_state) {
  f.validate();
  std::vector<TraceEntry> trace;
  std::function<void(const PendingCall&)> rec =
      [&](const PendingCall& call) {
        run_deferred(w, call, point_state);
        if (call.node == kNullNode) return;  // deferred-only sentinel
        trace.push_back({call.node, call.arg});
        run_body(f, w, call.node, call.arg, point_state, rec);
      };
  rec(PendingCall{root, arg0, {}, kNullNode, 0});
  return trace;
}

std::vector<TraceEntry> interpret_autoropes(const TraversalFunc& body,
                                            const World& w, NodeId root,
                                            std::int64_t arg0,
                                            std::int64_t& point_state) {
  body.validate();
  std::vector<TraceEntry> trace;
  std::vector<PendingCall> stk{PendingCall{root, arg0, {}, kNullNode, 0}};
  while (!stk.empty()) {
    PendingCall top = stk.back();
    stk.pop_back();
    run_deferred(w, top, point_state);
    if (top.node == kNullNode) continue;  // deferred-only sentinel
    trace.push_back({top.node, top.arg});
    run_body(body, w, top.node, top.arg, point_state,
             [&](const PendingCall& p) { stk.push_back(p); });
  }
  return trace;
}

}  // namespace tt::ir
