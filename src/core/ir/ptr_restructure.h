// Restructuring arbitrary recursive traversals into pseudo-tail-recursive
// form (paper section 3.2: "any function with arbitrary recursive calls
// and control flow can be systematically transformed to meet the
// criteria ... by turning intervening code between a pair of recursive
// calls into code that executes at the beginning of the latter call's
// execution").
//
// Supported shape: blocks whose statement list interleaves updates and
// calls, ending in Return. Every update sandwiched between two calls is
// moved into the following call's `deferred_updates`, to be executed at
// callee entry on behalf of the caller -- which preserves the original
// execution order (the earlier call's whole subtree finishes first either
// way). Updates *after the last call* of a block have no latter call to
// ride on; they would need a continuation mechanism the paper's benchmarks
// never require, so they are rejected with an explanatory error.
#pragma once

#include "core/ir/traversal_ir.h"

namespace tt::ir {

// True when f already satisfies pseudo-tail-recursion or can be fixed by
// this restructuring (no trailing non-call work after a block's last call).
bool can_restructure_to_ptr(const TraversalFunc& f);

// Returns the pseudo-tail-recursive equivalent; throws
// std::invalid_argument when !can_restructure_to_ptr(f).
TraversalFunc restructure_to_ptr(const TraversalFunc& f);

}  // namespace tt::ir
