// Static call-set analysis (paper section 3.2.1) and the structural
// classifications built on it.
#pragma once

#include <vector>

#include "core/ir/traversal_ir.h"

namespace tt::ir {

// All distinct call sets: call-site id sequences along every CFG path that
// makes at least one recursive call. Deduplicated, in first-discovery
// order (true-branch first, matching source order).
std::vector<CallSet> enumerate_call_sets(const TraversalFunc& f);

// Pseudo-tail-recursion (section 3.2): along every path from a recursive
// call to an exit there are only recursive calls -- i.e. no update executes
// after any call on any path.
bool is_pseudo_tail_recursive(const TraversalFunc& f);

enum class TraversalClass {
  kUnguided,  // single call set, point-independent child choice
  kGuided,    // multiple call sets (or point-dependent child choice)
};

// Conservative classification (section 3.2.1): unguided requires exactly
// one call set AND no call whose child argument depends on point state.
TraversalClass classify(const TraversalFunc& f);

struct AnalysisReport {
  std::vector<CallSet> call_sets;
  bool pseudo_tail_recursive = false;
  TraversalClass cls = TraversalClass::kGuided;
  bool lockstep_eligible = false;  // unguided => eligible without annotation
};

AnalysisReport analyze(const TraversalFunc& f);

}  // namespace tt::ir
