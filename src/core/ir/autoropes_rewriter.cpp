#include "core/ir/autoropes_rewriter.h"

#include <algorithm>
#include <stdexcept>

#include "core/ir/callset_analysis.h"

namespace tt::ir {

TraversalFunc autoropes_rewrite(const TraversalFunc& f) {
  f.validate();
  if (!is_pseudo_tail_recursive(f))
    throw std::invalid_argument(
        "autoropes_rewrite: function is not pseudo-tail-recursive");

  TraversalFunc out = f;
  out.name = f.name + "_autoropes";
  for (Block& b : out.blocks) {
    // Locate the trailing run of calls.
    std::size_t first_call = b.stmts.size();
    for (std::size_t i = 0; i < b.stmts.size(); ++i) {
      if (b.stmts[i].kind == Stmt::Kind::kCall) {
        first_call = i;
        break;
      }
    }
    if (first_call == b.stmts.size()) continue;  // no calls in this block
    for (std::size_t i = first_call; i < b.stmts.size(); ++i)
      if (b.stmts[i].kind != Stmt::Kind::kCall)
        throw std::invalid_argument(
            "autoropes_rewrite: calls are not a trailing run in block");
    if (b.term != Block::Term::kReturn)
      throw std::invalid_argument(
          "autoropes_rewrite: call block does not return");

    // Replace the call run with pushes in reverse order (section 3.2.2:
    // "the order in which nodes are pushed is the reverse of the original
    // order of recursive calls").
    std::reverse(b.stmts.begin() + static_cast<std::ptrdiff_t>(first_call),
                 b.stmts.end());
    for (std::size_t i = first_call; i < b.stmts.size(); ++i)
      b.stmts[i].kind = Stmt::Kind::kPush;
  }
  return out;
}

}  // namespace tt::ir
