#include "core/ir/ptr_restructure.h"

#include <stdexcept>
#include <vector>

namespace tt::ir {
namespace {

// Within one block: true if any non-call statement follows the last call.
bool has_trailing_work(const Block& b) {
  bool seen_call = false;
  bool trailing = false;
  for (const Stmt& s : b.stmts) {
    if (s.kind == Stmt::Kind::kCall) {
      seen_call = true;
      trailing = false;
    } else if (seen_call) {
      trailing = true;
    }
  }
  return trailing;
}

// A block with calls must not fall through into further work either.
bool call_block_returns(const Block& b) {
  for (const Stmt& s : b.stmts)
    if (s.kind == Stmt::Kind::kCall) return b.term == Block::Term::kReturn;
  return true;
}

}  // namespace

bool can_restructure_to_ptr(const TraversalFunc& f) {
  f.validate();
  for (const Block& b : f.blocks)
    if (has_trailing_work(b) || !call_block_returns(b)) return false;
  return true;
}

TraversalFunc restructure_to_ptr(const TraversalFunc& f) {
  if (!can_restructure_to_ptr(f))
    throw std::invalid_argument(
        "restructure_to_ptr: work after a block's final recursive call (or "
        "a fall-through call block) has no latter call to defer into");

  TraversalFunc out = f;
  out.name = f.name + "_ptr";
  for (Block& b : out.blocks) {
    std::vector<Stmt> rewritten;
    rewritten.reserve(b.stmts.size());
    std::vector<int> pending;  // updates awaiting the next call
    bool seen_call = false;
    for (Stmt& s : b.stmts) {
      if (s.kind != Stmt::Kind::kCall) {
        if (seen_call) {
          // Intervening work between calls: ride on the next call.
          pending.push_back(s.id);
        } else {
          rewritten.push_back(s);  // prologue work stays in place
        }
        continue;
      }
      // A call absorbs whatever intervening updates preceded it.
      s.deferred_updates.insert(s.deferred_updates.end(), pending.begin(),
                                pending.end());
      pending.clear();
      seen_call = true;
      rewritten.push_back(s);
    }
    // can_restructure_to_ptr guarantees pending is empty here.
    b.stmts = std::move(rewritten);
  }
  return out;
}

}  // namespace tt::ir
