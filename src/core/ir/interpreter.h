// Executable semantics for the traversal IR, used to demonstrate that the
// autoropes rewrite preserves the visit order of the original recursion
// (paper section 3.3) on arbitrary trees, points and condition functions.
//
// Opaque ids in the IR are resolved by caller-supplied callbacks over a
// mini-world: a LinearTree plus an integer point state and one integer
// traversal argument (the paper's `arg`; Figure 5/7).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/ir/traversal_ir.h"
#include "spatial/linear_tree.h"

namespace tt::ir {

struct World {
  const LinearTree* tree = nullptr;

  // cond(id, node, point_state, arg) -> bool
  std::function<bool(int, NodeId, std::int64_t&, std::int64_t)> cond;
  // update(id, node, point_state, arg): may mutate point_state
  std::function<void(int, NodeId, std::int64_t&, std::int64_t)> update;
  // Resolve a call's target child. Returning kNullNode skips the call
  // (absent child), mirroring `if (child) recurse(child)` guards.
  std::function<NodeId(int /*child_slot*/, NodeId, const std::int64_t&)>
      child;
  // arg'(arg_expr, arg, node); arg_expr -1 passes arg through.
  std::function<std::int64_t(int, std::int64_t, NodeId)> arg_fn;
};

struct TraceEntry {
  NodeId node;
  std::int64_t arg;
  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

// Run the *recursive* function: execute f's body at `root`, recursing at
// kCall statements. Returns the visit trace (one entry per function entry)
// and leaves the final point state in `point_state`.
std::vector<TraceEntry> interpret_recursive(const TraversalFunc& f,
                                            const World& w, NodeId root,
                                            std::int64_t arg0,
                                            std::int64_t& point_state);

// Run the *rewritten* body (autoropes_rewrite output) under the rope-stack
// loop of Figure 6/7: pop, execute body (kPush pushes in the emitted
// order), repeat until empty.
std::vector<TraceEntry> interpret_autoropes(const TraversalFunc& body,
                                            const World& w, NodeId root,
                                            std::int64_t arg0,
                                            std::int64_t& point_state);

}  // namespace tt::ir
