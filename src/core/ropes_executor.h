// Stackless traversal over statically-installed ropes (prior work the
// paper generalizes; see static_ropes.h). Provided as the comparison
// baseline for bench/ablation_ropes.cpp:
//
//   cur = root
//   while cur != end:
//     visit(cur)
//     cur = descend ? cur + 1 (first child, left-biased DFS)
//                   : rope[cur]
//
// Lockstep variant: the warp shares `cur`; a lane that truncates at node n
// records resume_at = rope[n] and is masked until cur reaches it (node ids
// only move forward in DFS order, so `cur >= resume_at` is exact).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "simt/cost_model.h"
#include "simt/executor.h"
#include "simt/warp_memory.h"
#include "util/timer.h"

namespace tt {

template <class K>
struct RopesRun {
  std::vector<typename K::Result> results;
  KernelStats stats;
  TimeBreakdown time;
  std::size_t n_warps = 0;
  double install_ms = 0;  // preprocessing cost (the autoropes saving)
  double sim_wall_ms = 0;
};

namespace detail {

// One lane's stackless traversal on the CPU (reference & tests).
template <RopeCompatibleKernel K>
void rope_traverse_one(const K& k, const StaticRopes& ropes,
                       typename K::State& st, std::uint32_t& visits) {
  NoopMem mem;
  NodeId cur = k.root();
  typename K::LArg no_larg{};
  while (cur != StaticRopes::kEndOfTraversal) {
    ++visits;
    bool descend =
        k.visit(cur, k.uarg_at(cur), no_larg, st, mem, 0);
    cur = descend ? cur + 1 : ropes.rope[static_cast<std::size_t>(cur)];
  }
}

}  // namespace detail

template <RopeCompatibleKernel K>
std::vector<typename K::Result> run_cpu_ropes(const K& k,
                                              const StaticRopes& ropes) {
  std::vector<typename K::Result> out(k.num_points());
  for (std::uint32_t pid = 0; pid < k.num_points(); ++pid) {
    NoopMem mem;
    typename K::State st = k.init(pid, mem, 0);
    std::uint32_t visits = 0;
    detail::rope_traverse_one(k, ropes, st, visits);
    out[pid] = k.finish(st);
  }
  return out;
}

template <RopeCompatibleKernel K>
RopesRun<K> run_gpu_ropes_sim(const K& k, GpuAddressSpace& space,
                              const DeviceConfig& cfg, bool lockstep,
                              const StaticRopes& ropes) {
  const std::size_t n = k.num_points();
  const std::size_t n_warps =
      (n + static_cast<std::size_t>(cfg.warp_size) - 1) /
      static_cast<std::size_t>(cfg.warp_size);
  // The rope pointers live beside the children in nodes1; model their load
  // as a 4-byte access to a dedicated array.
  BufferId rope_buf = space.ensure_buffer(
      "ropes", 4, static_cast<std::uint64_t>(ropes.rope.size()));

  RopesRun<K> run;
  run.n_warps = n_warps;
  run.install_ms = ropes.install_ms;
  run.results.resize(n);

  WallTimer timer;
  std::vector<KernelStats> per_warp = run_warps(
      n_warps, cfg, [&](std::size_t w, KernelStats& stats, L2Cache* l2) {
    WarpMemory mem(space, cfg, l2, stats);
    const auto begin = static_cast<std::uint32_t>(w * cfg.warp_size);
    const auto end = static_cast<std::uint32_t>(
        std::min<std::size_t>(n, (w + 1) * cfg.warp_size));
    const int lanes = static_cast<int>(end - begin);

    std::vector<typename K::State> state;
    state.reserve(lanes);
    for (int l = 0; l < lanes; ++l) state.push_back(k.init(begin + l, mem, l));
    mem.commit();
    typename K::LArg no_larg{};

    if (lockstep) {
      NodeId cur = k.root();
      // resume_at semantics: kNullNode = active; kNeverResume = this
      // lane's traversal ended (its truncation rope pointed past the
      // tree); otherwise the DFS id at which the lane unmasks.
      constexpr NodeId kNeverResume = std::numeric_limits<NodeId>::max();
      std::vector<NodeId> resume_at(lanes, kNullNode);
      while (cur != StaticRopes::kEndOfTraversal) {
        stats.note_warp_pop();
        stats.note_warp_step(cfg.c_step);
        stats.note_visit_cycles(cfg.c_visit);
        bool any_descend = false;
        int active = 0;
        for (int l = 0; l < lanes; ++l) {
          if (resume_at[l] != kNullNode && cur < resume_at[l]) continue;
          resume_at[l] = kNullNode;
          ++active;
          stats.note_lane_visit();
          if (k.visit(cur, k.uarg_at(cur), no_larg, state[l], mem, l)) {
            any_descend = true;
          } else {
            NodeId rope = ropes.rope[static_cast<std::size_t>(cur)];
            resume_at[l] =
                rope == StaticRopes::kEndOfTraversal ? kNeverResume : rope;
          }
        }
        stats.note_active_lanes(active);
        stats.note_vote(cfg.c_vote);
        if (any_descend) {
          cur = cur + 1;
        } else {
          mem.lane_load(0, rope_buf, static_cast<std::uint64_t>(cur));
          cur = ropes.rope[static_cast<std::size_t>(cur)];
          // Re-activate lanes whose resume point we just reached or
          // passed (monotone DFS ids make >= exact).
          if (cur == StaticRopes::kEndOfTraversal) {
            mem.commit();
            break;
          }
        }
        mem.commit();
      }
    } else {
      std::vector<NodeId> cur(lanes, k.root());
      for (;;) {
        int active = 0;
        for (int l = 0; l < lanes; ++l)
          if (cur[l] != StaticRopes::kEndOfTraversal) ++active;
        if (active == 0) break;
        stats.note_warp_step(cfg.c_step);
        stats.note_visit_cycles(cfg.c_visit);
        stats.note_active_lanes(active);
        for (int l = 0; l < lanes; ++l) {
          if (cur[l] == StaticRopes::kEndOfTraversal) continue;
          stats.note_lane_visit();
          bool descend = k.visit(cur[l], k.uarg_at(cur[l]), no_larg,
                                 state[l], mem, l);
          if (descend) {
            cur[l] = cur[l] + 1;
          } else {
            mem.lane_load(l, rope_buf, static_cast<std::uint64_t>(cur[l]));
            cur[l] = ropes.rope[static_cast<std::size_t>(cur[l])];
          }
        }
        mem.commit();
      }
    }
    for (int l = 0; l < lanes; ++l) run.results[begin + l] = k.finish(state[l]);
  });
  run.sim_wall_ms = timer.elapsed_ms();
  run.stats = merge_stats(per_warp);
  run.time = estimate_time_balanced(instr_cycles_of(per_warp), run.stats, cfg);
  return run;
}

}  // namespace tt
