// WarpEngine: the variant-independent core of the simulated GPU executor.
//
// The executor stack is layered (see DESIGN.md section 3):
//
//   WarpEngine (this header)   owns the per-warp lifecycle -- lane/state
//     setup, point->warp ranges, per-point / per-warp visit counters,
//     result copy-out, rope-stack overflow reporting, and the *single*
//     place where obs::WarpTracer events and KernelStats are emitted.
//   StackPolicy (stack_policy.h)   owns where traversal continuations
//     live: entry sizes, address computation and push/pop/spill traffic.
//   ConvergencePolicy (convergence_policy.h)   owns the warp schedule:
//     which lanes execute each step and how the warp reconverges.
//
// A GPU execution variant is a StackPolicy x ConvergencePolicy
// composition; run_gpu_sim (gpu_executors.h) holds the composition table.
// Policies never touch the tracer or raw counters directly: every event
// funnels through WarpEngine::emit() and the KernelStats::note_* API, so
// adding a fifth variant cannot fork the instrumentation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/traversal_kernel.h"
#include "core/variant.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "simt/device_config.h"
#include "simt/kernel_stats.h"
#include "simt/warp_memory.h"

namespace tt {

struct WarpRange {
  std::uint32_t begin = 0, end = 0;  // point ids [begin, end)
};

// Kernel self-identification (kernel_display_name) lives in
// core/traversal_kernel.h alongside the other kernel traits.

// Kernel id a chunk runs under when the launch is not part of a batch.
// Batched launches pass their index within the batch instead, which makes
// begin_chunk emit a kChunk trace event carrying the id.
inline constexpr std::uint32_t kSoloKernel = 0xffffffffu;

// Cross-warp rope-stack overflow report. The first warp to overflow wins
// the slot (compare-exchange), so the recorded warp id and entry count are
// deterministic per run even though warps execute in parallel.
class OverflowReport {
 public:
  void note(std::uint32_t warp, std::uint64_t entries) {
    bool expected = false;
    if (claimed_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      warp_ = warp;
      entries_ = entries;
      flag_.store(true, std::memory_order_release);
    }
  }
  [[nodiscard]] bool overflowed() const {
    return flag_.load(std::memory_order_acquire);
  }
  // Valid only after overflowed() returned true and all warps joined.
  [[nodiscard]] std::uint32_t warp() const { return warp_; }
  [[nodiscard]] std::uint64_t entries() const { return entries_; }

 private:
  std::atomic<bool> claimed_{false};
  std::atomic<bool> flag_{false};
  std::uint32_t warp_ = 0;
  std::uint64_t entries_ = 0;
};

template <TraversalKernel K>
class WarpEngine {
 public:
  using UArg = typename K::UArg;
  using LArg = typename K::LArg;
  using State = typename K::State;
  using Result = typename K::Result;
  using ChildT = Child<UArg, LArg>;
  // Per-lane child arguments produced by the union children phase.
  using LaneLArgs = std::array<std::array<LArg, K::kFanout>, 32>;

  WarpEngine(const K& k, const DeviceConfig& cfg, WarpMemory& mem,
             KernelStats& stats, OverflowReport& overflow, int stack_bound,
             obs::WarpTracer* tr, obs::ProfileCollector* pc = nullptr)
      : k_(&k),
        cfg_(&cfg),
        mem_(&mem),
        stats_(&stats),
        overflow_(&overflow),
        stack_bound_(stack_bound),
        tr_(tr),
        pc_(pc) {}

  // ---------------------------------------------------------------
  // THE single trace-emission site. Every executor event -- from any
  // stack or convergence policy -- goes through here; nothing else in
  // the executor stack calls obs::WarpTracer::record. The profiler's
  // hot-node / truncation aggregation rides the same stream.
  // ---------------------------------------------------------------
  void emit(obs::TraceEventKind kind, std::uint32_t node, std::uint32_t mask,
            std::uint32_t depth, std::uint32_t aux = 0) {
    if (tr_) tr_->record(kind, node, mask, depth, aux);
    if (pc_) pc_->on_event(kind, node, mask, depth, aux);
  }

  // Profile-only per-step hook: every convergence policy calls this once
  // per warp step, right where it charges note_warp_step /
  // note_active_lanes, with the step's stack depth and active-lane count.
  // This is what makes the profiler's per-depth histogram reconcile
  // *exactly* with KernelStats::warp_steps / active_lane_sum for all
  // variants -- including rec_nolockstep, whose call/return-only steps
  // emit no kVisit event.
  void profile_step(std::uint32_t depth, int active) {
    if (pc_) pc_->on_step(depth, active);
  }

  // --- per-chunk lifecycle (one 32-point chunk of the strip-mined grid)
  // `point_visits` is non-null for non-lockstep variants (per-point visit
  // counters, indexed by lane), `warp_pops` for lockstep variants (the
  // chunk's union-traversal pop count). `kernel_id` identifies the owning
  // launch when the chunk belongs to a batched run (batch_scheduler.h):
  // batched chunks open with a kChunk trace event carrying the id, solo
  // chunks (the default) emit nothing extra.
  void begin_chunk(std::uint32_t warp, WarpRange range, Result* results,
                   std::uint32_t* point_visits, std::uint32_t* warp_pops,
                   std::uint32_t kernel_id = kSoloKernel) {
    warp_ = warp;
    range_ = range;
    lanes_ = static_cast<int>(range.end - range.begin);
    results_ = results;
    point_visits_ = point_visits;
    warp_pops_ = warp_pops;
    pops_this_chunk_ = 0;
    if (kernel_id != kSoloKernel)
      emit(obs::TraceEventKind::kChunk, range.begin, full_mask(), 0, kernel_id);
    state_.clear();
    state_.reserve(static_cast<std::size_t>(lanes_));
    for (int l = 0; l < lanes_; ++l)
      state_.push_back(k_->init(range.begin + static_cast<std::uint32_t>(l),
                                *mem_, l));
    mem_->commit();  // initial coalesced point loads
  }

  void end_chunk() {
    if (warp_pops_) *warp_pops_ = pops_this_chunk_;
    for (int l = 0; l < lanes_; ++l) results_[l] = k_->finish(state_[l]);
  }

  // --- accessors for the policies
  [[nodiscard]] const K& kernel() const { return *k_; }
  [[nodiscard]] const DeviceConfig& cfg() const { return *cfg_; }
  [[nodiscard]] WarpMemory& mem() { return *mem_; }
  [[nodiscard]] KernelStats& stats() { return *stats_; }
  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] std::uint32_t warp() const { return warp_; }
  [[nodiscard]] WarpRange range() const { return range_; }
  [[nodiscard]] int stack_bound() const { return stack_bound_; }
  [[nodiscard]] State& state(int lane) { return state_[static_cast<std::size_t>(lane)]; }
  [[nodiscard]] std::uint32_t full_mask() const {
    return lanes_ >= 32 ? 0xffffffffu : ((1u << lanes_) - 1u);
  }

  // --- counters ---------------------------------------------------
  // Per-lane visit under a non-lockstep schedule (also feeds the
  // per-point visit counters Table 2 consumes).
  void count_point_visit(int lane) {
    stats_->note_lane_visit();
    if (point_visits_) ++point_visits_[lane];
  }
  // Warp-level pop of the union traversal (lockstep schedules).
  void count_warp_pop() {
    stats_->note_warp_pop();
    ++pops_this_chunk_;
  }
  // Rope-stack growth check: flags overflow (first warp wins) and tracks
  // the peak depth. Call after every push batch.
  void check_rope_depth(std::size_t entries) {
    if (entries > static_cast<std::size_t>(stack_bound_))
      overflow_->note(warp_, entries);
    stats_->note_stack_depth(entries);
  }

  // ----------------------------------------------------------------
  // Shared lockstep phases (union traversal, paper section 4). Both
  // lockstep compositions -- autoropes over a per-warp stack and
  // recursion over spilled call frames -- reconverge through these.
  // ----------------------------------------------------------------

  // Visit every lane in `mask`, then take the warp-wide AND truncation
  // vote of Figure 8. Returns the surviving (descend) mask.
  std::uint32_t union_visit_and_vote(NodeId node, const UArg& ua,
                                     const std::vector<LArg>& la,
                                     std::uint32_t mask, std::uint32_t depth) {
    stats_->note_visit_cycles(cfg_->c_visit);
    int active = 0;
    std::uint32_t new_mask = 0;
    for (int l = 0; l < lanes_; ++l) {
      if (!(mask & (1u << l))) continue;
      ++active;
      stats_->note_lane_visit();
      if (k_->visit(node, ua, la[static_cast<std::size_t>(l)], state_[static_cast<std::size_t>(l)],
                    *mem_, l))
        new_mask |= 1u << l;
    }
    stats_->note_active_lanes(active);
    profile_step(depth, active);
    mem_->commit();  // broadcast node load coalesces to one transaction
    emit(obs::TraceEventKind::kVisit, node, mask, depth);
    if ((mask & ~new_mask) != 0)
      emit(obs::TraceEventKind::kTruncate, node, mask & ~new_mask, depth);
    // Warp vote on whether anyone still descends (warp_and of Figure 8).
    stats_->note_vote(cfg_->c_vote);
    emit(obs::TraceEventKind::kVote, node, new_mask, depth, new_mask != 0);
    return new_mask;
  }

  // Section 4.3: dynamic single-call-set reduction by majority vote.
  // No-op (call set 0) for unguided kernels.
  int vote_callset(NodeId node, std::uint32_t new_mask, std::uint32_t depth) {
    int cs = 0;
    if constexpr (K::kNumCallSets > 1) {
      static_assert(K::kCallSetsEquivalent,
                    "lockstep requires semantically-equivalent call sets");
      int callset_votes[8] = {};
      for (int l = 0; l < lanes_; ++l)
        if (new_mask & (1u << l))
          ++callset_votes[k_->choose_callset(node, state_[static_cast<std::size_t>(l)])];
      for (int c = 1; c < K::kNumCallSets; ++c)
        if (callset_votes[c] > callset_votes[cs]) cs = c;
      stats_->note_vote(cfg_->c_vote);
      emit(obs::TraceEventKind::kVote, node, new_mask, depth,
           static_cast<std::uint32_t>(cs));
    }
    return cs;
  }

  // Child node ids and UArgs are warp-uniform (every lane passes the same
  // voted call set); per-lane LArgs are each lane's own computation. The
  // leader lane records the (shared) node loads; followers recompute their
  // LArgs against a NoopMem because they hit the leader's cacheline.
  int union_children(NodeId node, const UArg& ua, int cs,
                     std::uint32_t new_mask, ChildT* out,
                     LaneLArgs& lane_largs) {
    int cnt = 0;
    bool have_leader = false;
    for (int l = 0; l < lanes_; ++l) {
      if (!(new_mask & (1u << l))) continue;
      if (!have_leader) {
        have_leader = true;
        cnt = k_->children(node, ua, cs, state_[static_cast<std::size_t>(l)], out, *mem_, l);
        if constexpr (kernel_has_lane_arg<K>)
          for (int i = 0; i < cnt; ++i)
            lane_largs[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)] = out[i].larg;
      } else if constexpr (kernel_has_lane_arg<K>) {
        NoopMem noop;
        ChildT mine[K::kFanout];
        k_->children(node, ua, cs, state_[static_cast<std::size_t>(l)], mine, noop, l);
        for (int i = 0; i < cnt; ++i)
          lane_largs[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)] = mine[i].larg;
      }
    }
    mem_->commit();
    return cnt;
  }

 private:
  const K* k_;
  const DeviceConfig* cfg_;
  WarpMemory* mem_;
  KernelStats* stats_;
  OverflowReport* overflow_;
  int stack_bound_;
  obs::WarpTracer* tr_;
  obs::ProfileCollector* pc_;

  std::uint32_t warp_ = 0;
  WarpRange range_;
  int lanes_ = 0;
  Result* results_ = nullptr;
  std::uint32_t* point_visits_ = nullptr;
  std::uint32_t* warp_pops_ = nullptr;
  std::uint32_t pops_this_chunk_ = 0;
  std::vector<State> state_;
};

}  // namespace tt
