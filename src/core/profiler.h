// Runtime traversal-similarity profiling (paper section 4.4, adopting Jo &
// Kulkarni's sampling method): draw a few samples of neighboring points,
// run their traversals, and measure how similar they are. Similar
// neighbors => the input is (effectively) sorted => lockstep traversal is
// profitable; dissimilar => use the non-lockstep variant.
//
// Raw Jaccard similarity is not comparable across kernels: Barnes-Hut
// traversals share the whole top of the octree, so even *shuffled* bodies
// measure ~0.44, while guide-truncated traversals (nn, vp) only reach
// ~0.42 on perfectly tree-sorted inputs because their visit sets are short
// and query-specific. No absolute cutoff separates the two regimes. The
// detector therefore normalizes against a per-input baseline: the mean
// similarity of *random* traversal pairs from the same input. On a
// shuffled input, adjacent points are themselves a random pair, so the
// lift (adjacent mean - random baseline) is ~0 by construction for every
// kernel; on a spatially sorted input the lift is large (>= ~0.3 across
// the five Table-1 benchmarks).
#pragma once

#include <cstdint>
#include <vector>

#include "core/traversal_kernel.h"
#include "util/rng.h"

namespace tt {

// Jaccard similarity of two visited-node id sets (inputs need not be
// sorted; they are copied and sorted internally).
double traversal_jaccard(std::vector<NodeId> a, std::vector<NodeId> b);

// Minimum similarity lift (adjacent-pair mean minus random-pair baseline)
// for an input to count as sorted. Empirically, the five Table-1
// benchmarks measure a lift >= ~0.3 on Morton- or kd-leaf-sorted inputs
// and ~0 (sampling noise only) on shuffled ones, so 0.15 splits the
// regimes with margin on both sides; bench/selection_sweep sweeps the
// axis.
inline constexpr double kSimilarityLiftThreshold = 0.15;

struct ProfileReport {
  double mean_similarity = 0;      // mean Jaccard over adjacent (pid, pid+1)
  double baseline_similarity = 0;  // mean Jaccard over random pairs
  std::size_t samples = 0;
  double threshold = kSimilarityLiftThreshold;
  bool looks_sorted = false;
  // Total nodes visited while recording the sampled traversals. Sampling
  // is not free on a real GPU; the auto_select variant charges these to
  // the simulated cost model (see run_gpu_sim).
  std::uint64_t sampled_visits = 0;

  // The decision statistic: how much more similar adjacent traversals are
  // than random ones from the same input.
  double lift() const { return mean_similarity - baseline_similarity; }
};

// Record the node ids one point's traversal visits (autoropes semantics).
template <TraversalKernel K>
std::vector<NodeId> record_traversal(const K& k, std::uint32_t pid) {
  NoopMem mem;
  std::vector<NodeId> visited;
  typename K::State st = k.init(pid, mem, 0);
  std::vector<Child<typename K::UArg, typename K::LArg>> stk;
  Child<typename K::UArg, typename K::LArg> out[K::kFanout];
  stk.push_back({k.root(), k.root_uarg(), k.root_larg()});
  while (!stk.empty()) {
    auto top = stk.back();
    stk.pop_back();
    visited.push_back(top.node);
    if (!k.visit(top.node, top.uarg, top.larg, st, mem, 0)) continue;
    int cs = K::kNumCallSets > 1 ? k.choose_callset(top.node, st) : 0;
    int cnt = k.children(top.node, top.uarg, cs, st, out, mem, 0);
    for (int i = cnt - 1; i >= 0; --i) stk.push_back(out[i]);
  }
  return visited;
}

// Sample `samples` pairs of adjacent points (pid, pid+1) and average their
// traversal similarity; the random-pair baseline reuses the already
// recorded traversals (consecutive samples pick independent pids, so
// pairing sample s's first traversal with sample s+1's costs no extra
// visits). `threshold` is the sorted-detection cutoff on the lift
// (mean - baseline >= threshold => treat the input as sorted); the
// default kSimilarityLiftThreshold is justified above. With a single
// sample no baseline pair exists, so the lift degenerates to the raw
// mean.
template <TraversalKernel K>
ProfileReport profile_similarity(const K& k, std::size_t samples,
                                 std::uint64_t seed,
                                 double threshold = kSimilarityLiftThreshold) {
  ProfileReport r;
  r.threshold = threshold;
  const std::size_t n = k.num_points();
  if (n < 2) {
    r.looks_sorted = true;
    return r;
  }
  Pcg32 rng(seed, 11);
  double total_adjacent = 0;
  double total_baseline = 0;
  std::vector<NodeId> prev;
  for (std::size_t s = 0; s < samples; ++s) {
    auto pid = static_cast<std::uint32_t>(
        rng.next_below(static_cast<std::uint32_t>(n - 1)));
    auto a = record_traversal(k, pid);
    auto b = record_traversal(k, pid + 1);
    r.sampled_visits += a.size() + b.size();
    if (s > 0) total_baseline += traversal_jaccard(prev, a);
    prev = a;
    total_adjacent += traversal_jaccard(std::move(a), std::move(b));
  }
  r.samples = samples;
  r.mean_similarity =
      samples ? total_adjacent / static_cast<double>(samples) : 0.0;
  r.baseline_similarity =
      samples > 1 ? total_baseline / static_cast<double>(samples - 1) : 0.0;
  r.looks_sorted = r.lift() >= threshold;
  return r;
}

}  // namespace tt
