// Runtime traversal-similarity profiling (paper section 4.4, adopting Jo &
// Kulkarni's sampling method): draw a few samples of neighboring points,
// run their traversals, and measure how similar they are. Similar
// neighbors => the input is (effectively) sorted => lockstep traversal is
// profitable; dissimilar => use the non-lockstep variant.
#pragma once

#include <cstdint>
#include <vector>

#include "core/traversal_kernel.h"
#include "util/rng.h"

namespace tt {

// Jaccard similarity of two visited-node id sets (inputs need not be
// sorted; they are copied and sorted internally).
double traversal_jaccard(std::vector<NodeId> a, std::vector<NodeId> b);

struct ProfileReport {
  double mean_similarity = 0;
  std::size_t samples = 0;
  bool looks_sorted = false;
};

inline constexpr double kSortedSimilarityThreshold = 0.5;

// Record the node ids one point's traversal visits (autoropes semantics).
template <TraversalKernel K>
std::vector<NodeId> record_traversal(const K& k, std::uint32_t pid) {
  NoopMem mem;
  std::vector<NodeId> visited;
  typename K::State st = k.init(pid, mem, 0);
  std::vector<Child<typename K::UArg, typename K::LArg>> stk;
  Child<typename K::UArg, typename K::LArg> out[K::kFanout];
  stk.push_back({k.root(), k.root_uarg(), k.root_larg()});
  while (!stk.empty()) {
    auto top = stk.back();
    stk.pop_back();
    visited.push_back(top.node);
    if (!k.visit(top.node, top.uarg, top.larg, st, mem, 0)) continue;
    int cs = K::kNumCallSets > 1 ? k.choose_callset(top.node, st) : 0;
    int cnt = k.children(top.node, top.uarg, cs, st, out, mem, 0);
    for (int i = cnt - 1; i >= 0; --i) stk.push_back(out[i]);
  }
  return visited;
}

// Sample `samples` pairs of adjacent points (pid, pid+1) and average their
// traversal similarity.
template <TraversalKernel K>
ProfileReport profile_similarity(const K& k, std::size_t samples,
                                 std::uint64_t seed) {
  ProfileReport r;
  const std::size_t n = k.num_points();
  if (n < 2) {
    r.looks_sorted = true;
    return r;
  }
  Pcg32 rng(seed, 11);
  double total = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    auto pid = static_cast<std::uint32_t>(
        rng.next_below(static_cast<std::uint32_t>(n - 1)));
    total += traversal_jaccard(record_traversal(k, pid),
                               record_traversal(k, pid + 1));
  }
  r.samples = samples;
  r.mean_similarity = samples ? total / static_cast<double>(samples) : 0.0;
  r.looks_sorted = r.mean_similarity >= kSortedSimilarityThreshold;
  return r;
}

}  // namespace tt
