// StackPolicy layer: where traversal continuations live on the simulated
// device, and what memory traffic / cycles their movement costs.
//
// Each policy owns (a) the entry size of what it stores, (b) the address
// computation for a (lane, level) slot inside the warp's arena, and (c)
// the accounting of push/pop/spill traffic -- charged through the
// policy-facing WarpMemory::lane_stack_traffic and KernelStats::note_*
// API. Policies never emit trace events or touch counters directly; the
// WarpEngine (warp_engine.h) is the single instrumentation point.
//
//   LaneRopeStack  -- one rope stack per lane in global memory, interleaved
//                     so lanes in step coalesce (paper section 5.2), or the
//                     contiguous-per-lane ablation layout.
//   WarpStack      -- one rope stack per warp (lockstep, Figure 8): the
//                     warp-shared record (node + mask + uniform arg) lives
//                     in shared memory (or global, as the section-5.2
//                     ablation), while per-lane LArg planes stay in the
//                     interleaved global stack.
//   CallFrames     -- recursion: per-lane call frames spilled to
//                     thread-interleaved local memory.
//   StacklessRope  -- no stack at all: truncation follows the statically
//                     installed escape-index rope (core/static_ropes.h),
//                     one global rope-array load per escape.
//   IndexWalk      -- no stack and no rope loads either: the Wald-style
//                     arithmetic escape for left-biased DFS binary trees,
//                     a pure index computation at shared-memory latency.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/rope_stack.h"
#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "simt/kernel_stats.h"

namespace tt {

// Bytes of one interleaved global rope-stack entry (node id + arguments),
// padded to 4-byte granularity like the generated CUDA code would.
template <class K>
constexpr std::uint32_t stack_entry_bytes(bool lockstep) {
  std::uint32_t b = lockstep ? 0 : 4;  // node id (per warp under lockstep)
  if constexpr (kernel_has_uniform_arg<K>)
    if (!lockstep) b += static_cast<std::uint32_t>(sizeof(typename K::UArg));
  if constexpr (kernel_has_lane_arg<K>)
    b += static_cast<std::uint32_t>(sizeof(typename K::LArg));
  return (b + 3u) & ~3u;
}

// ---------------------------------------------------------------------
// Per-lane rope stacks in global memory (non-lockstep autoropes).
// ---------------------------------------------------------------------
struct LaneRopeStack {
  std::uint64_t base = 0;
  std::uint32_t entry_bytes = 0;
  std::uint32_t warp_size = 32;
  std::uint32_t max_levels = 0;  // contiguous-ablation per-lane block size
  bool contiguous = false;       // section-5.2 ablation layout

  [[nodiscard]] std::uint64_t addr(int lane, std::size_t level) const {
    return base +
           (contiguous
                ? contiguous_stack_offset(level, static_cast<std::uint32_t>(lane),
                                          max_levels, entry_bytes)
                : interleaved_stack_offset(level,
                                           static_cast<std::uint32_t>(lane),
                                           warp_size, entry_bytes));
  }

  // A pop re-reads the entry the matching push wrote.
  template <class Engine>
  void record_pop(Engine& eng, int lane, std::size_t level) const {
    eng.mem().lane_stack_traffic(lane, addr(lane, level), entry_bytes);
  }
  // A push writes the entry and pays the stack-maintenance instruction.
  template <class Engine>
  void record_push(Engine& eng, int lane, std::size_t level) const {
    eng.mem().lane_stack_traffic(lane, addr(lane, level), entry_bytes);
    eng.stats().note_stack_cycles(eng.cfg().c_smem);
  }
};

// ---------------------------------------------------------------------
// Per-warp masked stack (lockstep autoropes, Figure 8).
// ---------------------------------------------------------------------
struct WarpStack {
  std::uint64_t lane_plane_base = 0;   // interleaved per-lane LArg planes
  std::uint64_t warp_entries_base = 0; // global-ablation warp records
  std::uint32_t lane_entry_bytes = 0;
  std::uint32_t warp_size = 32;
  bool global = false;  // ablation: warp entries in global, not shared, mem

  [[nodiscard]] std::uint64_t lane_addr(int lane, std::size_t level) const {
    return lane_plane_base +
           (level * static_cast<std::size_t>(warp_size) +
            static_cast<std::size_t>(lane)) *
               lane_entry_bytes;
  }

  // Push or pop of the warp-shared record (node id + mask + uniform arg):
  // one 12-byte global access under the ablation, a shared-memory op
  // otherwise.
  template <class Engine>
  void record_warp_op(Engine& eng, std::size_t level) const {
    if (global)
      eng.mem().lane_stack_traffic(0, warp_entries_base + level * 12, 12);
    else
      eng.stats().note_stack_cycles(eng.cfg().c_smem);
  }
  // Per-lane argument plane traffic at `level` (kernels with LArgs only).
  template <class Engine>
  void record_lane_plane(Engine& eng, int lane, std::size_t level) const {
    eng.mem().lane_stack_traffic(lane, lane_addr(lane, level),
                                 lane_entry_bytes);
  }
};

// ---------------------------------------------------------------------
// Spilled call frames in thread-interleaved local memory (recursion).
// ---------------------------------------------------------------------
struct CallFrames {
  std::uint64_t base = 0;
  std::uint32_t frame_bytes = 0;
  std::uint32_t warp_size = 32;

  [[nodiscard]] std::uint64_t addr(int lane, std::size_t depth) const {
    return base +
           (depth * static_cast<std::size_t>(warp_size) +
            static_cast<std::size_t>(lane)) *
               frame_bytes;
  }

  // One frame spill (call) or restore (return) for `lane` at `depth`.
  template <class Engine>
  void record_frame(Engine& eng, int lane, std::size_t depth) const {
    eng.mem().lane_stack_traffic(lane, addr(lane, depth), frame_bytes);
  }
};

// ---------------------------------------------------------------------
// Stackless escape-index ropes (prior work's static ropes as a policy:
// Popov et al. / Hapala et al. via core/static_ropes.h). Descend is
// cur + 1 under the left-biased DFS layout; truncation follows
// rope[cur] == cur + subtree_size(cur). No stack state exists, so the
// profiler's `stack` bucket stays at exactly zero and the shared-memory
// bytes the WarpStack record occupied are free for the node cache.
// ---------------------------------------------------------------------
struct StacklessRope {
  const StaticRopes* ropes = nullptr;
  std::int32_t rope_buf = -1;  // the installed rope array in global memory

  [[nodiscard]] NodeId escape(NodeId n) const {
    return ropes->rope[static_cast<std::size_t>(n)];
  }

  // One global rope-array load per escape taken: per-lane under the
  // per-lane walks, a single lane-0 load per whole-warp escape under
  // lockstep (the warp-shared cursor is one value).
  template <class Engine>
  void record_escape(Engine& eng, int lane, NodeId n) const {
    eng.mem().lane_load(lane, rope_buf, static_cast<std::uint64_t>(n));
  }
};

// ---------------------------------------------------------------------
// Wald-style index-arithmetic escape for left-biased DFS binary trees
// (fanout 2 only, see kernel_index_walk_eligible): the escape target is
// derived from node indices alone, so an escape costs one shared-memory-
// latency arithmetic step and touches no memory at all. The host
// simulation reads the installed rope table as its oracle for the same
// value the arithmetic would produce.
// ---------------------------------------------------------------------
struct IndexWalk {
  const StaticRopes* ropes = nullptr;

  [[nodiscard]] NodeId escape(NodeId n) const {
    return ropes->rope[static_cast<std::size_t>(n)];
  }

  // Index arithmetic only: charged to the step bucket, no traffic.
  template <class Engine>
  void record_escape(Engine& eng, int /*lane*/, NodeId /*n*/) const {
    eng.stats().charge(CycleBucket::kStep, eng.cfg().c_smem);
  }
};

}  // namespace tt
