// The GPU execution variants the harness evaluates, as a first-class enum:
// the paper's four fixed compositions, `auto_select` (the section-4.4
// adaptive variant that samples traversal similarity at launch time and
// dispatches to the lockstep or non-lockstep autoropes composition), and
// the stackless family (escape-index ropes and Wald-style index walks
// with the freed shared memory repurposed as a modelled node cache).
// `Variant` is the public way to name a configuration; `GpuMode` is the
// executor-facing knob struct it expands to (plus the section-5.2 ablation
// switches). Harness results, reports and tests all key off `Variant` so a
// variant has exactly one spelling everywhere.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tt {

enum class Variant : std::uint8_t {
  kAutoLockstep = 0,     // autoropes, per-warp union traversal (Figure 8)
  kAutoNolockstep = 1,   // autoropes, per-lane rope stacks (Figure 6/7)
  kRecLockstep = 2,      // recursion over the union traversal (footnote 5)
  kRecNolockstep = 3,    // naive CUDA port: per-lane recursion
  kAutoSelect = 4,       // section 4.4: sample similarity, then dispatch to
                         // kAutoLockstep or kAutoNolockstep per launch
  // Stackless family: no per-warp traversal stack at all. The freed
  // shared-memory bytes become a modelled top-of-tree node cache
  // (simt/smem_cache.h). Eligible only for unguided single-call-set
  // kernels whose tree carries escape-index ropes (StacklessCompatibleKernel
  // in core/static_ropes.h); index_walk additionally needs fanout 2.
  kStacklessLockstep = 5,    // escape-index ropes, per-warp union traversal
  kStacklessNolockstep = 6,  // escape-index ropes, per-lane walks
  kIndexWalk = 7,            // Wald-style index arithmetic, per-lane walks
};

inline constexpr std::size_t kNumVariants = 8;

inline constexpr std::array<Variant, kNumVariants> kAllVariants{
    Variant::kAutoLockstep,      Variant::kAutoNolockstep,
    Variant::kRecLockstep,       Variant::kRecNolockstep,
    Variant::kAutoSelect,        Variant::kStacklessLockstep,
    Variant::kStacklessNolockstep, Variant::kIndexWalk};

// The four fixed compositions of the original evaluation. Golden fixtures
// captured before `auto_select` existed compare against exactly this set
// (tools/json_validate --golden).
inline constexpr std::size_t kNumLegacyVariants = 4;

inline constexpr std::array<Variant, kNumLegacyVariants> kLegacyVariants{
    Variant::kAutoLockstep, Variant::kAutoNolockstep, Variant::kRecLockstep,
    Variant::kRecNolockstep};

[[nodiscard]] constexpr const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kAutoLockstep: return "auto_lockstep";
    case Variant::kAutoNolockstep: return "auto_nolockstep";
    case Variant::kRecLockstep: return "rec_lockstep";
    case Variant::kRecNolockstep: return "rec_nolockstep";
    case Variant::kAutoSelect: return "auto_select";
    case Variant::kStacklessLockstep: return "stackless_lockstep";
    case Variant::kStacklessNolockstep: return "stackless_nolockstep";
    case Variant::kIndexWalk: return "index_walk";
  }
  return "?";
}

// "auto_lockstep" etc. -> Variant; throws std::invalid_argument otherwise.
[[nodiscard]] inline Variant variant_from_name(const std::string& name) {
  for (Variant v : kAllVariants)
    if (name == variant_name(v)) return v;
  std::string valid;
  for (Variant v : kAllVariants) {
    if (!valid.empty()) valid += ", ";
    valid += variant_name(v);
  }
  throw std::invalid_argument("variant_from_name: unknown variant '" + name +
                              "' (valid: " + valid + ")");
}

[[nodiscard]] constexpr bool variant_is_autoropes(Variant v) {
  // auto_select only ever dispatches to an autoropes composition.
  return v == Variant::kAutoLockstep || v == Variant::kAutoNolockstep ||
         v == Variant::kAutoSelect;
}

[[nodiscard]] constexpr bool variant_is_lockstep(Variant v) {
  // auto_select is not *statically* lockstep; its launch-time decision is
  // reported through SelectionInfo instead.
  return v == Variant::kAutoLockstep || v == Variant::kRecLockstep ||
         v == Variant::kStacklessLockstep;
}

[[nodiscard]] constexpr bool variant_is_stackless(Variant v) {
  return v == Variant::kStacklessLockstep ||
         v == Variant::kStacklessNolockstep || v == Variant::kIndexWalk;
}

// A value-type set of Variants: the canonical way to say "these variants
// run" (the harness's --variant filter, bench binaries, tests). Replaces
// the raw std::array<bool, kNumVariants> mask that used to live on
// BenchConfig. Iterable (yields Variant in enum order) and parseable from
// the same CSV spelling the --variant CLI flag accepts.
class VariantSet {
 public:
  constexpr VariantSet() = default;

  [[nodiscard]] static constexpr VariantSet all() {
    VariantSet s;
    for (Variant v : kAllVariants) s.add(v);
    return s;
  }
  [[nodiscard]] static constexpr VariantSet none() { return VariantSet{}; }
  [[nodiscard]] static constexpr VariantSet only(Variant v) {
    return VariantSet{}.add(v);
  }
  // "all" or a comma-separated list of canonical variant names
  // (variant_from_name rejects unknown spellings, listing the valid ones
  // in its error). This is THE parser behind the --variant flag.
  [[nodiscard]] static VariantSet from_names(const std::string& spec) {
    if (spec == "all") return all();
    VariantSet s;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      std::size_t comma = spec.find(',', pos);
      std::string tok = spec.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      s.add(variant_from_name(tok));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return s;
  }

  constexpr VariantSet& add(Variant v) {
    bits_ |= static_cast<std::uint8_t>(1u << static_cast<std::size_t>(v));
    return *this;
  }
  constexpr VariantSet& remove(Variant v) {
    bits_ &= static_cast<std::uint8_t>(
        ~(1u << static_cast<std::size_t>(v)));
    return *this;
  }
  [[nodiscard]] constexpr bool contains(Variant v) const {
    return (bits_ & (1u << static_cast<std::size_t>(v))) != 0;
  }
  [[nodiscard]] constexpr std::size_t count() const {
    std::size_t c = 0;
    for (Variant v : kAllVariants) c += contains(v) ? 1 : 0;
    return c;
  }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }

  // Canonical CSV spelling ("all" when every variant is enabled), i.e.
  // from_names(s.to_string()) == s.
  [[nodiscard]] std::string to_string() const {
    if (*this == all()) return "all";
    std::string out;
    for (Variant v : *this) {
      if (!out.empty()) out += ",";
      out += variant_name(v);
    }
    return out;
  }

  friend constexpr bool operator==(VariantSet a, VariantSet b) {
    return a.bits_ == b.bits_;
  }

  class iterator {
   public:
    constexpr iterator(std::uint8_t bits, std::size_t i) : bits_(bits), i_(i) {
      skip();
    }
    constexpr Variant operator*() const { return static_cast<Variant>(i_); }
    constexpr iterator& operator++() {
      ++i_;
      skip();
      return *this;
    }
    friend constexpr bool operator==(iterator a, iterator b) {
      return a.i_ == b.i_;
    }

   private:
    constexpr void skip() {
      while (i_ < kNumVariants && !(bits_ & (1u << i_))) ++i_;
    }
    std::uint8_t bits_;
    std::size_t i_;
  };
  [[nodiscard]] constexpr iterator begin() const { return {bits_, 0}; }
  [[nodiscard]] constexpr iterator end() const { return {bits_, kNumVariants}; }

 private:
  std::uint8_t bits_ = 0;
};

// The launch-time decision record of the auto_select variant: what the
// section-4.4 sampler measured and which composition it dispatched to.
// Carried on GpuRun / VariantResult and exported as the "selection" block
// of the RunReport JSON (schema v2).
struct SelectionInfo {
  double mean_similarity = 0;      // mean Jaccard over adjacent sampled pairs
  double baseline_similarity = 0;  // mean Jaccard over random pairs
  std::uint64_t samples = 0;       // sampled (pid, pid+1) traversal pairs
  double threshold = 0;  // sorted-detection cutoff on the similarity lift
  Variant chosen = Variant::kAutoNolockstep;  // dispatched composition
  double sampling_cycles = 0;  // modelled cost charged for the sampling
};

struct GpuMode {
  bool autoropes = true;
  bool lockstep = false;

  // Ablation knobs for the section-5.2 design choices (defaults are the
  // paper's choices). `contiguous_stack` gives each lane a dense private
  // block instead of interleaving, so same-level entries of adjacent lanes
  // never share a 128-byte segment. `lockstep_stack_global` keeps the
  // per-warp lockstep stack in global memory instead of shared memory.
  bool contiguous_stack = false;
  bool lockstep_stack_global = false;

  // Figure 9b's strip-mined grid loop: a finite grid makes each physical
  // warp process several 32-point chunks (pid += gridDim * blockDim),
  // reusing its L2 slice across chunks. 0 = grid big enough for one chunk
  // per warp (the default model); otherwise the physical warp count.
  std::size_t grid_limit = 0;

  // Section 4.4 adaptive selection: when set, run_gpu_sim samples
  // `profile_samples` adjacent traversal pairs with a deterministic
  // `profile_seed`, charges the sampling to the cost model, and dispatches
  // to the lockstep or non-lockstep autoropes composition. The `lockstep`
  // flag above is then decided at launch, not here.
  bool auto_select = false;
  std::size_t profile_samples = 32;
  std::uint64_t profile_seed = 1;

  // Stackless family (escape-index ropes / index arithmetic): no traversal
  // stack is allocated at all, so ensure_stack_arena is skipped and the
  // profiler's `stack` bucket stays at exactly zero. `index_walk` selects
  // the Wald-style arithmetic escape (no rope loads either); otherwise the
  // rope array is read per escape like ropes_executor does.
  bool stackless = false;
  bool index_walk = false;
  // Shared-memory top-of-tree node cache, modelled in WarpMemory::commit.
  // cache_bytes == 0 means "the bytes the per-warp lockstep stack record
  // used to occupy" (resolved at launch from the geometry); any other
  // value pins the capacity for the ablation sweep.
  bool smem_node_cache = false;
  std::size_t cache_bytes = 0;

  // The canonical spelling of the eight variants.
  [[nodiscard]] static constexpr GpuMode from(Variant v) {
    GpuMode m;
    m.autoropes = variant_is_autoropes(v);
    m.lockstep = variant_is_lockstep(v);
    m.auto_select = v == Variant::kAutoSelect;
    m.stackless = variant_is_stackless(v);
    m.index_walk = v == Variant::kIndexWalk;
    m.smem_node_cache = m.stackless;
    return m;
  }

  [[nodiscard]] constexpr Variant variant() const {
    if (auto_select) return Variant::kAutoSelect;
    if (index_walk) return Variant::kIndexWalk;
    if (stackless)
      return lockstep ? Variant::kStacklessLockstep
                      : Variant::kStacklessNolockstep;
    if (autoropes)
      return lockstep ? Variant::kAutoLockstep : Variant::kAutoNolockstep;
    return lockstep ? Variant::kRecLockstep : Variant::kRecNolockstep;
  }
};

}  // namespace tt
