// The four GPU execution variants the paper evaluates, as a first-class
// enum. `Variant` is the public way to name a configuration; `GpuMode` is
// the executor-facing knob struct it expands to (plus the section-5.2
// ablation switches). Harness results, reports and tests all key off
// `Variant` so a variant has exactly one spelling everywhere.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tt {

enum class Variant : std::uint8_t {
  kAutoLockstep = 0,     // autoropes, per-warp union traversal (Figure 8)
  kAutoNolockstep = 1,   // autoropes, per-lane rope stacks (Figure 6/7)
  kRecLockstep = 2,      // recursion over the union traversal (footnote 5)
  kRecNolockstep = 3,    // naive CUDA port: per-lane recursion
};

inline constexpr std::size_t kNumVariants = 4;

inline constexpr std::array<Variant, kNumVariants> kAllVariants{
    Variant::kAutoLockstep, Variant::kAutoNolockstep, Variant::kRecLockstep,
    Variant::kRecNolockstep};

[[nodiscard]] constexpr const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kAutoLockstep: return "auto_lockstep";
    case Variant::kAutoNolockstep: return "auto_nolockstep";
    case Variant::kRecLockstep: return "rec_lockstep";
    case Variant::kRecNolockstep: return "rec_nolockstep";
  }
  return "?";
}

// "auto_lockstep" etc. -> Variant; throws std::invalid_argument otherwise.
[[nodiscard]] inline Variant variant_from_name(const std::string& name) {
  for (Variant v : kAllVariants)
    if (name == variant_name(v)) return v;
  std::string valid;
  for (Variant v : kAllVariants) {
    if (!valid.empty()) valid += ", ";
    valid += variant_name(v);
  }
  throw std::invalid_argument("variant_from_name: unknown variant '" + name +
                              "' (valid: " + valid + ")");
}

[[nodiscard]] constexpr bool variant_is_autoropes(Variant v) {
  return v == Variant::kAutoLockstep || v == Variant::kAutoNolockstep;
}

[[nodiscard]] constexpr bool variant_is_lockstep(Variant v) {
  return v == Variant::kAutoLockstep || v == Variant::kRecLockstep;
}

struct GpuMode {
  bool autoropes = true;
  bool lockstep = false;

  // Ablation knobs for the section-5.2 design choices (defaults are the
  // paper's choices). `contiguous_stack` gives each lane a dense private
  // block instead of interleaving, so same-level entries of adjacent lanes
  // never share a 128-byte segment. `lockstep_stack_global` keeps the
  // per-warp lockstep stack in global memory instead of shared memory.
  bool contiguous_stack = false;
  bool lockstep_stack_global = false;

  // Figure 9b's strip-mined grid loop: a finite grid makes each physical
  // warp process several 32-point chunks (pid += gridDim * blockDim),
  // reusing its L2 slice across chunks. 0 = grid big enough for one chunk
  // per warp (the default model); otherwise the physical warp count.
  std::size_t grid_limit = 0;

  // The canonical spelling of the four paper variants.
  [[nodiscard]] static constexpr GpuMode from(Variant v) {
    GpuMode m;
    m.autoropes = variant_is_autoropes(v);
    m.lockstep = variant_is_lockstep(v);
    return m;
  }

  [[nodiscard]] constexpr Variant variant() const {
    if (autoropes)
      return lockstep ? Variant::kAutoLockstep : Variant::kAutoNolockstep;
    return lockstep ? Variant::kRecLockstep : Variant::kRecNolockstep;
  }
};

}  // namespace tt
