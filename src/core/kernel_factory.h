// Name-keyed kernel construction registry -- the promotion of the old
// bench_algos/kernel_builder.h per-algo switch into a first-class core
// API. A builder registered under a name ("pc", "rope_knn",
// "fused_knn_nn", ...) generates its input data, orders it, builds the
// tree and constructs the kernel, parking everything behind the returned
// KernelHandle's keep-alive so the handle is self-contained. Consumers
// (bench/selection_sweep, bench/fusion, the auto_select acceptance test)
// then ask for kernels by name and run them through the type-erased
// launch API (core/launch.h) -- no per-algo switch, no direct dependency
// on the benchmark kernel types.
//
// The registry itself lives in core, below tt_data/tt_algos; the builders
// that register the benchmark kernels live in bench_algos
// (register_kernels.h: register_bench_kernels()), mirroring how
// tt_obs_report layers above tt_algos.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/launch.h"
#include "simt/address_space.h"

namespace tt {

// How the query points are laid out before the tree build: the two
// "sorted" layouts of section 4.4 (Morton for low dimensions, kd-tree
// leaf order for high) and the adversarial shuffled layout. (Moved here
// from bench_algos/kernel_builder.h so KernelRequest can name a layout
// without reaching above core.)
enum class PointOrder { kMorton, kTree, kShuffled };

[[nodiscard]] constexpr const char* point_order_name(PointOrder o) {
  switch (o) {
    case PointOrder::kMorton: return "morton";
    case PointOrder::kTree: return "tree";
    case PointOrder::kShuffled: return "shuffled";
  }
  return "?";
}

// "morton" etc. -> PointOrder; throws std::invalid_argument listing the
// valid spellings otherwise (same convention as variant_from_name).
[[nodiscard]] PointOrder point_order_from_name(const std::string& name);

// Everything a builder may need to generate and shape its input. Plain
// data; defaults match BenchConfig's Table-1 defaults so a
// default-constructed request builds the same kernels run_bench does.
struct KernelRequest {
  std::size_t n = 8192;       // points (or bodies)
  std::uint64_t seed = 42;
  int dim = 7;                // projected dimensionality (tree benchmarks)
  int k = 8;                  // kNN
  double pc_target_neighbors = 32;
  float bh_theta = 0.5f;
  float bh_eps2 = 1e-4f;
  float bh_dt = 0.0125f;      // fused-timestep builders integrate one step
  int leaf_size = 8;          // bucket kd-tree leaves
  // Input generator by name: "covtype", "mnist", "uniform", "geocity"
  // for the point benchmarks; "plummer", "random_bodies" for the body
  // benchmarks. "" picks the builder's canonical Table-1 input. Unknown
  // spellings throw, listing the valid ones.
  std::string input;
  PointOrder order = PointOrder::kTree;
};

// The registry. Builders construct a kernel (plus its data and tree) into
// a keep-alive bundle and register its tree/point buffers into the
// caller's address space, exactly like run_bench does, so run_gpu_sim /
// run_gpu_batch on the handle model the same address space.
class KernelFactory {
 public:
  using Builder = std::function<std::shared_ptr<KernelHandle>(
      const KernelRequest&, GpuAddressSpace&)>;

  [[nodiscard]] static KernelFactory& instance();

  // Latest registration wins; idempotent re-registration is the caller's
  // concern (register_bench_kernels guards itself).
  void register_builder(std::string name, Builder build);

  [[nodiscard]] bool contains(const std::string& name) const;

  // Registered names, sorted -- the "valid:" list of make's error.
  [[nodiscard]] std::vector<std::string> names() const;

  // Build the named kernel. Throws std::invalid_argument on an unknown
  // name, listing the valid spellings (variant_from_name convention).
  [[nodiscard]] std::shared_ptr<KernelHandle> make(
      const std::string& name, const KernelRequest& req,
      GpuAddressSpace& space) const;

 private:
  std::map<std::string, Builder> builders_;
};

}  // namespace tt
