#include "core/device_group.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include <omp.h>

#include "core/serving.h"
#include "obs/chrome_trace.h"
#include "simt/executor.h"
#include "simt/l2cache.h"

namespace tt {

double ShardedRun::copy_in_ms() const {
  double s = 0;
  for (const DeviceShard& d : devices) s += d.transfer.copy_in_ms;
  return s;
}

double ShardedRun::overlap_ms() const {
  double s = 0;
  for (const DeviceShard& d : devices) s += d.transfer.overlap_ms;
  return s;
}

double ShardedRun::exposed_ms() const {
  double s = 0;
  for (const DeviceShard& d : devices) s += d.transfer.exposed_ms;
  return s;
}

double ShardingRunSummary::single_device_ms() const {
  double s = 0;
  for (const ShardingKernelReport& k : kernels) s += k.single_device_ms;
  return s;
}

double ShardingRunSummary::makespan_ms() const {
  double s = 0;
  for (const ShardingKernelReport& k : kernels) s += k.makespan_ms;
  return s;
}

double ShardingRunSummary::speedup() const {
  const double m = makespan_ms();
  return m > 0 ? single_device_ms() / m : 1.0;
}

ShardedRun run_sharded(const LaunchSpec& spec, std::uint64_t upload_bytes,
                       std::uint64_t download_bytes,
                       const DeviceGroupConfig& cfg) {
  if (!spec.kernel || !spec.space)
    throw std::invalid_argument(
        "run_sharded: LaunchSpec is missing its kernel or address space");
  if (cfg.devices == 0)
    throw std::invalid_argument("run_sharded: cfg.devices must be >= 1");

  ShardedRun out;
  out.policy = cfg.policy;
  out.chunk_points = std::max<std::size_t>(cfg.chunk_points, 1);

  // Phase A: the canonical single-device baseline. Resolves auto_select
  // (sampling charged, kSelect event on spec.trace if any) and produces
  // the reference results, counters and TimeBreakdown.
  LaunchPool solo = run_launch_pool(std::span(&spec, 1), cfg.device);
  LaunchResult& base = solo.launches[0];
  out.single_device_ms =
      base.time.total_ms +
      cfg.transfer.round_trip_ms(upload_bytes, download_bytes, 1);
  if (!base.ok()) {
    out.merged = std::move(base);
    out.single_device_ms = 0;
    return out;
  }

  const std::size_t n = base.n_points;
  const std::size_t n_warps = base.n_warps;
  const auto warp_size = static_cast<std::size_t>(cfg.device.warp_size);
  const bool lockstep = !base.per_warp_pops.empty();

  // Chunk costs from the baseline's own counters: per-warp pop counts
  // (lockstep) or the warp's summed per-point visits. +1 keeps all-leaf
  // chunks from looking free to the greedy.
  std::vector<double> costs(n_warps, 1.0);
  if (lockstep) {
    for (std::size_t w = 0; w < n_warps; ++w)
      costs[w] += static_cast<double>(base.per_warp_pops[w]);
  } else {
    for (std::size_t i = 0; i < base.per_point_visits.size(); ++i)
      costs[i / warp_size] += static_cast<double>(base.per_point_visits[i]);
  }
  const DeviceAssignment asg = assign_devices(costs, cfg.devices, cfg.policy);

  // The baseline's executed composition, with spec.mode's ablation knobs
  // kept -- the per-device runs must not re-roll the auto_select dice.
  GpuMode mode = spec.mode;
  mode.auto_select = false;
  mode.autoropes = variant_is_autoropes(base.variant);
  mode.lockstep = variant_is_lockstep(base.variant);

  // Canonical-order merge target; stats/time/selection stay the baseline's.
  out.merged.kernel_name = base.kernel_name;
  out.merged.batch_index = base.batch_index;
  out.merged.variant = base.variant;
  out.merged.stats = base.stats;
  out.merged.time = base.time;
  out.merged.n_points = n;
  out.merged.n_warps = n_warps;
  out.merged.result_stride = base.result_stride;
  out.merged.selection = base.selection;
  out.merged.profile = base.profile;
  out.merged.results.assign(n * base.result_stride, std::byte{0});
  if (lockstep)
    out.merged.per_warp_pops.assign(n_warps, 0);
  else
    out.merged.per_point_visits.assign(n, 0);

  const double cycles_per_ms = cfg.device.clock_ghz * 1e6;
  out.devices.reserve(cfg.devices);
  std::size_t cum_points = 0;  // exact byte partition across devices
  bool sampling_charged = false;

  for (std::size_t d = 0; d < cfg.devices; ++d) {
    DeviceShard sh;
    sh.device = d;
    sh.chunks = asg.chunks[d];
    sh.steals = asg.steals[d];
    sh.cost = asg.load[d];

    std::vector<std::uint32_t> warps;
    warps.reserve(sh.chunks);
    for (std::size_t w = 0; w < n_warps; ++w)
      if (asg.device[w] == d) {
        warps.push_back(static_cast<std::uint32_t>(w));
        sh.points += std::min(n, (w + 1) * warp_size) - w * warp_size;
      }

    // The device's share of the bus traffic: an exact partition of the
    // total byte counts, proportional to points (cumulative differencing,
    // so the shares sum to the whole with no rounding residue).
    const std::size_t next_points = cum_points + sh.points;
    if (n > 0) {
      sh.upload_bytes = upload_bytes * next_points / n -
                        upload_bytes * cum_points / n;
      sh.download_bytes = download_bytes * next_points / n -
                          download_bytes * cum_points / n;
    }
    cum_points = next_points;

    if (warps.empty()) {
      // Idle device: no launch, no transfer, clock stays at zero.
      out.devices.push_back(std::move(sh));
      continue;
    }

    obs::TraceSink* trace = nullptr;
    if (cfg.chrome)
      trace = &cfg.chrome->begin_launch("dev" + std::to_string(d) + "/" +
                                        base.kernel_name);
    std::unique_ptr<LaunchRun> run = spec.kernel->prepare(
        *spec.space, cfg.device, mode, trace, nullptr, kSoloKernel);
    if (trace) trace->begin(run->shape.n_warps, omp_get_max_threads());

    // The device's own grid: its solo grid bounded by its chunk count, so
    // its L2 slice size is what a single device running just these chunks
    // would get.
    const std::size_t grid = std::min(run->shape.grid, warps.size());
    sh.rounds = (warps.size() + grid - 1) / grid;
    const std::size_t resident = std::min<std::size_t>(
        grid, static_cast<std::size_t>(cfg.device.max_resident_warps()));
    const std::size_t slice_bytes = cfg.device.l2_bytes / resident;

    std::vector<KernelStats> per_slot(grid);
    std::span<const std::uint32_t> warp_span(warps);
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t p = 0; p < static_cast<std::int64_t>(grid); ++p) {
      if (cfg.device.model_l2) {
        L2Cache slice(slice_bytes, cfg.device.l2_line_bytes,
                      cfg.device.l2_assoc);
        run->run_shard_slot(warp_span, grid, static_cast<std::size_t>(p),
                            per_slot[static_cast<std::size_t>(p)], &slice);
      } else {
        run->run_shard_slot(warp_span, grid, static_cast<std::size_t>(p),
                            per_slot[static_cast<std::size_t>(p)], nullptr);
      }
    }
    if (run->overflow.overflowed()) {
      // Cannot happen when the baseline succeeded (same kernel, same
      // stack bound, same per-chunk traversal); belt and braces.
      out.merged.error = std::string("kernel ") + base.kernel_name +
                         " (device " + std::to_string(d) +
                         "): rope stack overflow in sharded re-execution";
      out.devices.push_back(std::move(sh));
      return out;
    }

    sh.stats = merge_stats(per_slot);
    sh.time = estimate_time_balanced(instr_cycles_of(per_slot), sh.stats,
                                     cfg.device);
    if (base.selection && !sampling_charged) {
      // The section-4.4 sampler ran once before the group dispatched;
      // charge it to the first working device, same accounting as
      // run_launch_pool (so summed device compute covers it exactly once).
      sh.stats.note_sampling_cycles(base.selection->sampling_cycles);
      sh.time.compute_ms += base.selection->sampling_cycles / cycles_per_ms;
      sh.time.total_ms = std::max(sh.time.compute_ms, sh.time.memory_ms);
      sh.time.memory_bound = sh.time.memory_ms > sh.time.compute_ms;
      sampling_charged = true;
    }

    // Pipelined transfer: the device's upload strip-mined into
    // chunk_points-sized copies overlapping its compute.
    const std::size_t copy_chunks =
        (sh.points + out.chunk_points - 1) / out.chunk_points;
    sh.transfer = cfg.transfer.pipelined_round_trip(
        sh.upload_bytes, sh.download_bytes, sh.time.total_ms,
        std::max<std::size_t>(copy_chunks, 1));
    sh.busy_ms = sh.transfer.total_ms;

    if (trace) {
      // One launch-scope copy event per pipelined upload chunk, on this
      // device's track, next to its warp rows.
      for (std::size_t c = 0; c < std::max<std::size_t>(copy_chunks, 1); ++c) {
        const std::size_t begin = c * out.chunk_points;
        const std::size_t pts = std::min(out.chunk_points, sh.points - begin);
        trace->record_launch(obs::TraceEventKind::kCopy,
                             static_cast<std::uint32_t>(c),
                             static_cast<std::uint32_t>(pts), 0,
                             static_cast<std::uint32_t>(d));
      }
    }

    // Merge this device's results and counters back in canonical order.
    const auto* data = static_cast<const std::byte*>(run->result_data());
    const std::size_t stride = base.result_stride;
    for (std::uint32_t w : warps) {
      const std::size_t begin = static_cast<std::size_t>(w) * warp_size;
      const std::size_t end =
          std::min(n, (static_cast<std::size_t>(w) + 1) * warp_size);
      std::memcpy(out.merged.results.data() + begin * stride,
                  data + begin * stride, (end - begin) * stride);
      if (lockstep)
        out.merged.per_warp_pops[w] = run->per_warp_pops[w];
      else
        std::copy(run->per_point_visits.begin() +
                      static_cast<std::ptrdiff_t>(begin),
                  run->per_point_visits.begin() +
                      static_cast<std::ptrdiff_t>(end),
                  out.merged.per_point_visits.begin() +
                      static_cast<std::ptrdiff_t>(begin));
    }

    out.devices.push_back(std::move(sh));
  }

  // The sharding contract, enforced at runtime: the merged canonical-order
  // results and visit counters must be byte-identical to the baseline's.
  if (out.merged.results != base.results ||
      out.merged.per_point_visits != base.per_point_visits ||
      out.merged.per_warp_pops != base.per_warp_pops)
    out.merged.error = std::string("kernel ") + base.kernel_name +
                       ": sharded results diverge from the single-device "
                       "baseline (sharding is required to be byte-identical)";

  for (const DeviceShard& sh : out.devices)
    out.makespan_ms = std::max(out.makespan_ms, sh.busy_ms);
  out.speedup =
      out.makespan_ms > 0 ? out.single_device_ms / out.makespan_ms : 1.0;
  return out;
}

}  // namespace tt
