#include "core/serving.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>

#include <omp.h>

#include "obs/chrome_trace.h"
#include "simt/cost_model.h"
#include "simt/executor.h"
#include "simt/l2cache.h"
#include "util/rng.h"
#include "util/timer.h"

namespace tt {

// ---------------------------------------------------------------------
// Dispatch layer (the body that used to be run_gpu_batch).
// ---------------------------------------------------------------------

LaunchPool run_launch_pool(std::span<const LaunchSpec> specs,
                           const DeviceConfig& cfg) {
  LaunchPool out;

  struct Prep {
    GpuMode mode;  // resolved (auto_select replaced by its dispatch)
    std::optional<SelectionInfo> selection;
    std::unique_ptr<LaunchRun> run;
    std::vector<KernelStats> per_slot;
    std::size_t slice_bytes = 0;
    std::string error;  // admission failure (variant ineligible); run == null
  };
  std::vector<Prep> preps(specs.size());

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const LaunchSpec& spec = specs[i];
    if (!spec.kernel || !spec.space)
      throw std::invalid_argument("run_launch_pool: LaunchSpec " +
                                  std::to_string(i) +
                                  " is missing its kernel or address space");
    Prep& pr = preps[i];
    GpuMode mode = spec.mode;
    if (mode.variant() == Variant::kAutoSelect) {
      // Per-launch section-4.4 resolution, exactly like run_gpu_sim's
      // early dispatch: sample, choose the autoropes composition, and
      // charge the sampling to this launch's cost model afterwards.
      if (mode.profile_samples == 0)
        throw std::invalid_argument(
            "run_launch_pool: auto_select needs profile_samples >= 1");
      const ProfileReport p =
          spec.kernel->profile(mode.profile_samples, mode.profile_seed);
      mode.auto_select = false;
      mode.autoropes = true;
      mode.lockstep = p.looks_sorted;
      SelectionInfo sel;
      sel.mean_similarity = p.mean_similarity;
      sel.baseline_similarity = p.baseline_similarity;
      sel.samples = p.samples;
      sel.threshold = p.threshold;
      sel.chosen = mode.variant();
      sel.sampling_cycles =
          static_cast<double>(p.sampled_visits) * (cfg.c_visit + cfg.c_step);
      pr.selection = sel;
    }
    pr.mode = mode;
    const std::string why =
        spec.kernel->variant_ineligible_reason(mode.variant());
    if (!why.empty()) {
      // Isolation, like an overflow: this launch fails with a prefixed
      // error and zeroed numbers; sibling launches still execute. The
      // message body is the canonical reason string (core/static_ropes.h),
      // same spelling run_gpu_sim and the harness skip rows use.
      pr.error = std::string("kernel ") + spec.kernel->name() + " (batch " +
                 std::to_string(i) + "): " + why;
      out.shapes.push_back(LaunchGeometry{});
      continue;
    }
    pr.run = spec.kernel->prepare(*spec.space, cfg, mode, spec.trace,
                                  spec.profile,
                                  static_cast<std::uint32_t>(i));
    pr.per_slot.assign(pr.run->shape.grid, KernelStats{});
    // The launch's own L2 slice size -- the same formula run_warps uses
    // for a solo run over this launch's grid (byte-identity requires it).
    const std::size_t grid = pr.run->shape.grid;
    const std::size_t resident = std::min<std::size_t>(
        grid == 0 ? 1 : grid,
        static_cast<std::size_t>(cfg.max_resident_warps()));
    pr.slice_bytes = cfg.l2_bytes / resident;
    if (spec.trace)
      spec.trace->begin(pr.run->shape.n_warps, omp_get_max_threads());
    if (spec.profile) spec.profile->begin(omp_get_max_threads());
    out.shapes.push_back(pr.run->shape);
  }

  // The concurrent-residency pool: every launch's physical warp slots,
  // simulated in parallel. Slot state is fully launch-private, so OpenMP
  // scheduling (and the caller's issue policy) cannot change any launch's
  // measurements -- only the schedule accounting differs across policies.
  struct Slot {
    std::uint32_t launch = 0;
    std::uint32_t p = 0;
  };
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < preps.size(); ++i)
    for (std::size_t p = 0; preps[i].run && p < preps[i].run->shape.grid; ++p)
      slots.push_back(Slot{static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(p)});

  WallTimer timer;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t si = 0; si < static_cast<std::int64_t>(slots.size());
       ++si) {
    const Slot sl = slots[static_cast<std::size_t>(si)];
    Prep& pr = preps[sl.launch];
    if (cfg.model_l2) {
      L2Cache slice(pr.slice_bytes, cfg.l2_line_bytes, cfg.l2_assoc);
      pr.run->run_slot(sl.p, pr.per_slot[sl.p], &slice);
    } else {
      pr.run->run_slot(sl.p, pr.per_slot[sl.p], nullptr);
    }
  }
  out.sim_wall_ms = timer.elapsed_ms();

  out.launches.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Prep& pr = preps[i];
    const LaunchSpec& spec = specs[i];
    LaunchResult r;
    r.kernel_name = spec.kernel->name();
    r.batch_index = i;
    r.variant = pr.mode.variant();
    if (!pr.run) {
      r.result_stride = spec.kernel->result_stride();
      r.error = pr.error;
      out.launches.push_back(std::move(r));
      continue;
    }
    r.n_points = pr.run->shape.n;
    r.n_warps = pr.run->shape.n_warps;
    r.result_stride = pr.run->result_stride();
    if (pr.run->overflow.overflowed()) {
      // Isolation: this launch fails with a name+index-prefixed error and
      // zeroed numbers; sibling launches are untouched.
      r.error = std::string("kernel ") + r.kernel_name + " (batch " +
                std::to_string(i) + "): rope stack overflow (variant " +
                variant_name(r.variant) + ", warp " +
                std::to_string(pr.run->overflow.warp()) + ", " +
                std::to_string(pr.run->overflow.entries()) +
                " entries, stack_bound " +
                std::to_string(pr.run->shape.stack_bound) + ")";
      out.launches.push_back(std::move(r));
      continue;
    }
    r.stats = merge_stats(pr.per_slot);
    r.time = estimate_time_balanced(instr_cycles_of(pr.per_slot), r.stats, cfg);
    if (pr.selection) {
      // Same accounting as run_gpu_sim's auto_select dispatch: sampling
      // runs serially before the kernel, charged to compute time.
      r.selection = pr.selection;
      r.stats.note_sampling_cycles(pr.selection->sampling_cycles);
      const double cycles_per_ms = cfg.clock_ghz * 1e6;
      r.time.compute_ms += pr.selection->sampling_cycles / cycles_per_ms;
      r.time.total_ms = std::max(r.time.compute_ms, r.time.memory_ms);
      r.time.memory_bound = r.time.memory_ms > r.time.compute_ms;
      if (spec.trace)
        spec.trace->record_launch(
            obs::TraceEventKind::kSelect, 0xffffffffu,
            static_cast<std::uint32_t>(pr.selection->samples), 0,
            pr.selection->chosen == Variant::kAutoLockstep ? 1u : 0u);
    }
    if (spec.profile) {
      // Build AFTER the sampling charge so reconciliation covers it.
      const obs::ProfileCollector merged = spec.profile->merged();
      r.profile = obs::make_profile_report(r.stats, cfg, &merged);
    }
    const std::byte* data =
        static_cast<const std::byte*>(pr.run->result_data());
    r.results.assign(data, data + r.n_points * r.result_stride);
    r.per_point_visits = std::move(pr.run->per_point_visits);
    r.per_warp_pops = std::move(pr.run->per_warp_pops);
    out.launches.push_back(std::move(r));
  }
  return out;
}

// ---------------------------------------------------------------------
// Admission layer.
// ---------------------------------------------------------------------

ServingConfig ServingConfig::closed_batch(const DeviceConfig& device,
                                          BatchPolicy policy,
                                          std::size_t n_specs) {
  ServingConfig c;
  c.device = device;
  c.policy = policy;
  c.drain.max_batch = std::numeric_limits<std::size_t>::max();
  c.drain.max_delay_ms = 0;
  c.queue_capacity = std::max<std::size_t>(n_specs, 1);
  c.reuse_identical = false;
  c.keep_batch_results = true;
  return c;
}

LatencySummary summarize_latency(std::vector<double> xs) {
  LatencySummary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  // Same linear interpolation as util/stats percentile(), over one sort.
  auto interp = [&](double p) {
    const double rank =
        p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    if (lo + 1 >= xs.size()) return xs.back();
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
  };
  s.p50 = interp(50);
  s.p95 = interp(95);
  s.p99 = interp(99);
  s.max = xs.back();
  return s;
}

double ServingReport::amortized_transfer_ms() const {
  double sum = 0;
  for (const DrainRecord& d : drains) sum += d.transfer_ms;
  return sum;
}

double ServingReport::summed_solo_transfer_ms() const {
  double sum = 0;
  for (const DrainRecord& d : drains) sum += d.solo_transfer_ms;
  return sum;
}

ServingSession::ServingSession(ServingConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.drain.max_batch == 0) cfg_.drain.max_batch = 1;
  if (cfg_.drain.max_delay_ms < 0) cfg_.drain.max_delay_ms = 0;
  if (cfg_.devices == 0) cfg_.devices = 1;
  device_free_ms_.assign(cfg_.devices, 0.0);
  ring_.resize(std::max<std::size_t>(cfg_.queue_capacity, 1));
}

ServingSession::CacheKey ServingSession::cache_key(const LaunchSpec& spec) {
  const GpuMode& m = spec.mode;
  return std::make_tuple(spec.kernel.get(), m.autoropes, m.lockstep,
                         m.auto_select,
                         m.contiguous_stack, m.lockstep_stack_global,
                         m.grid_limit, m.profile_samples, m.profile_seed);
}

bool ServingSession::submit(QuerySet q, double arrival_ms) {
  if (!q.spec.kernel || !q.spec.space)
    throw std::invalid_argument(
        "ServingSession::submit: QuerySet is missing its kernel or address "
        "space");
  if (any_arrival_ && arrival_ms < last_arrival_ms_)
    throw std::invalid_argument(
        "ServingSession::submit: arrival times must be non-decreasing");
  if (!any_arrival_) {
    first_arrival_ms_ = arrival_ms;
    any_arrival_ = true;
  }
  last_arrival_ms_ = arrival_ms;
  ++submitted_;
  // Fire every wave whose max-delay deadline passed before this arrival.
  advance_to(arrival_ms);
  if (count_ == ring_.size()) {
    ++dropped_;
    return false;
  }
  ring_[(head_ + count_) % ring_.size()] =
      Pending{std::move(q), arrival_ms};
  ++count_;
  queue_depth_max_ = std::max(queue_depth_max_, count_);
  queue_depth_stats_.add(static_cast<double>(count_));
  while (count_ >= cfg_.drain.max_batch) fire(arrival_ms);
  return true;
}

void ServingSession::advance_to(double now_ms) {
  while (count_ > 0) {
    const double deadline = front().arrival_ms + cfg_.drain.max_delay_ms;
    if (deadline >= now_ms) break;
    fire(deadline);
  }
}

void ServingSession::flush() {
  while (count_ > 0) fire(front().arrival_ms + cfg_.drain.max_delay_ms);
}

ServingSession::Pending ServingSession::pop_front() {
  Pending p = std::move(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --count_;
  return p;
}

void ServingSession::fire(double trigger_ms) {
  const std::size_t n = std::min(cfg_.drain.max_batch, count_);
  if (n == 0) return;
  DrainRecord rec;
  rec.trigger_ms = trigger_ms;
  // Route the wave to the least-loaded device (earliest free; ties break
  // to the lowest index so the choice is deterministic). Dispatch times
  // stay non-decreasing across drains: each fire only raises one entry of
  // the free array, so its minimum never moves backwards, and triggers
  // are non-decreasing by the admission contract.
  std::size_t device = 0;
  for (std::size_t d = 1; d < device_free_ms_.size(); ++d)
    if (device_free_ms_[d] < device_free_ms_[device]) device = d;
  rec.device = device;
  rec.dispatch_ms = std::max(trigger_ms, device_free_ms_[device]);
  rec.queue_depth_before = count_;
  rec.n_queries = n;

  std::vector<Pending> wave;
  wave.reserve(n);
  for (std::size_t i = 0; i < n; ++i) wave.push_back(pop_front());

  // Classify cold (execute) vs warm (replay cached measurements). A wave
  // that opens Chrome tracks executes everything cold so the trace shows
  // real warp activity; caching the executed stats is always sound --
  // batching is results-neutral, so they match what solo would measure.
  const std::size_t drain_index = drains_.size();
  const bool tracing = cfg_.chrome && drain_index < cfg_.max_drain_tracks;
  struct Admit {
    bool warm = false;
    CachedLaunch info;
  };
  std::vector<Admit> admits(n);
  std::vector<LaunchSpec> cold;
  std::vector<std::size_t> cold_to_admit;
  for (std::size_t i = 0; i < n; ++i) {
    LaunchSpec spec = wave[i].q.spec;
    const bool own_sinks = spec.trace != nullptr || spec.profile != nullptr;
    if (tracing && !spec.trace)
      spec.trace = &cfg_.chrome->begin_launch(
          "drain" + std::to_string(drain_index) + "/" + spec.kernel->name());
    if (cfg_.reuse_identical && !own_sinks && !tracing) {
      auto it = cache_.find(cache_key(wave[i].q.spec));
      if (it != cache_.end()) {
        admits[i].warm = true;
        admits[i].info = it->second;
        continue;
      }
    }
    cold_to_admit.push_back(i);
    cold.push_back(spec);
  }

  LaunchPool pool;
  if (!cold.empty()) pool = run_launch_pool(cold, cfg_.device);
  rec.cold_launches = cold.size();

  for (std::size_t c = 0; c < cold.size(); ++c) {
    const LaunchResult& r = pool.launches[c];
    CachedLaunch info;
    info.shape = pool.shapes[c];
    info.variant = r.variant;
    info.total_ms = r.ok() ? r.time.total_ms : 0.0;
    info.ok = r.ok();
    admits[cold_to_admit[c]].info = info;
    if (cfg_.reuse_identical) {
      // Pin the handle: the cache key is its address (see CachedLaunch).
      info.keepalive = wave[cold_to_admit[c]].q.spec.kernel;
      cache_.insert_or_assign(cache_key(wave[cold_to_admit[c]].q.spec),
                              std::move(info));
    }
  }

  // Schedule accounting over the whole wave, warm launches included: the
  // modelled device still runs them; only the re-simulation was skipped.
  BatchScheduler sched(cfg_.policy);
  for (const Admit& a : admits) sched.add_launch(a.info.shape);
  const BatchSchedule bs = sched.schedule();
  rec.residency = bs.residency;
  rec.total_chunks = bs.total_chunks;
  rec.rounds = bs.rounds;
  rec.switches = bs.switches;

  // One amortized round trip for the wave vs what solo dispatch would pay.
  std::uint64_t up = 0;
  std::uint64_t down = 0;
  std::size_t wave_points = 0;
  for (std::size_t i = 0; i < n; ++i) {
    up += wave[i].q.upload_bytes;
    down += wave[i].q.download_bytes;
    wave_points += wave[i].q.spec.kernel->num_points();
    rec.solo_transfer_ms += cfg_.transfer.round_trip_ms(
        wave[i].q.upload_bytes, wave[i].q.download_bytes, 1);
  }

  double total_compute = 0;
  for (const Admit& a : admits) total_compute += a.info.total_ms;
  rec.compute_ms = total_compute;
  if (cfg_.shard_chunk > 0) {
    // Pipelined wave upload: copy-in strip-mined into shard_chunk-point
    // copies overlapping the wave's compute; only the exposed portion is
    // charged as the wave's transfer time.
    const std::size_t chunks = std::max<std::size_t>(
        (wave_points + cfg_.shard_chunk - 1) / cfg_.shard_chunk, 1);
    rec.transfer_ms =
        cfg_.transfer.pipelined_round_trip(up, down, total_compute, chunks)
            .exposed_ms;
  } else {
    rec.transfer_ms = cfg_.transfer.round_trip_ms(up, down, 1);
  }
  rec.service_ms = rec.transfer_ms + total_compute;

  // Per-query completion = queueing + wave transfer + compute. Sequential
  // issue retires each launch in admission order (prefix sums of compute);
  // round-robin interleaves waves, so every query retires with the wave.
  double prefix = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prefix += admits[i].info.total_ms;
    const double offset =
        cfg_.policy == BatchPolicy::kSequential ? prefix : total_compute;
    const double completion = rec.dispatch_ms + rec.transfer_ms + offset;
    // Summed as (queueing + transfer + compute) rather than
    // completion - arrival: mathematically identical, but immune to the
    // big-minus-big cancellation that would make a query's latency depend
    // on how far into the trace it arrived.
    const double queued = rec.dispatch_ms - wave[i].arrival_ms;
    latencies_.push_back(queued + rec.transfer_ms + offset);
    queue_delays_.push_back(queued);
    last_completion_ms_ = std::max(last_completion_ms_, completion);
    if (!admits[i].info.ok) ++failed_;
  }
  device_free_ms_[device] = rec.dispatch_ms + rec.service_ms;
  busy_ms_ += rec.service_ms;
  drains_.push_back(rec);

  if (cfg_.keep_batch_results) {
    BatchRun run;
    run.launches = std::move(pool.launches);
    run.policy = cfg_.policy;
    run.residency = bs.residency;
    run.total_chunks = bs.total_chunks;
    run.rounds = bs.rounds;
    run.switches = bs.switches;
    run.sim_wall_ms = pool.sim_wall_ms;
    closed_run_ = std::move(run);
  }
}

ServingReport ServingSession::report() const {
  ServingReport r;
  r.devices = cfg_.devices;
  r.shard_chunk = cfg_.shard_chunk;
  r.submitted = submitted_;
  r.completed = latencies_.size();
  r.dropped = dropped_;
  r.failed = failed_;
  r.first_arrival_ms = first_arrival_ms_;
  r.last_completion_ms = last_completion_ms_;
  r.busy_ms = busy_ms_;
  r.queue_depth_max = queue_depth_max_;
  r.queue_depth = queue_depth_stats_.summary();
  r.latency = summarize_latency(latencies_);
  r.queue_delay = summarize_latency(queue_delays_);
  r.drains = drains_;
  return r;
}

BatchRun ServingSession::take_closed_run() {
  if (!cfg_.keep_batch_results)
    throw std::logic_error(
        "ServingSession::take_closed_run: session was not configured with "
        "keep_batch_results");
  BatchRun run = closed_run_ ? std::move(*closed_run_) : BatchRun{};
  run.policy = cfg_.policy;
  closed_run_.reset();
  return run;
}

// ---------------------------------------------------------------------
// Closed-batch adapter: the legacy one-shot entry point.
// ---------------------------------------------------------------------

BatchRun run_gpu_batch(std::span<const LaunchSpec> specs,
                       const DeviceConfig& cfg, BatchPolicy policy) {
  for (std::size_t i = 0; i < specs.size(); ++i)
    if (!specs[i].kernel || !specs[i].space)
      throw std::invalid_argument("run_gpu_batch: LaunchSpec " +
                                  std::to_string(i) +
                                  " is missing its kernel or address space");
  ServingSession session(
      ServingConfig::closed_batch(cfg, policy, specs.size()));
  for (const LaunchSpec& spec : specs) session.submit(QuerySet{spec}, 0.0);
  session.flush();
  return session.take_closed_run();
}

// ---------------------------------------------------------------------
// Arrival traces.
// ---------------------------------------------------------------------

std::vector<double> poisson_trace(std::size_t n, double rate_qps,
                                  std::uint64_t seed) {
  if (!(rate_qps > 0))
    throw std::invalid_argument("poisson_trace: rate_qps must be > 0");
  Pcg32 rng(seed, 0x5e59c1a7);  // own stream: trace draws stay stable
  std::vector<double> ts(n);
  const double scale = 1e3 / rate_qps;
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += -std::log(1.0 - rng.next_double()) * scale;
    ts[i] = t;
  }
  return ts;
}

std::vector<double> bursty_trace(std::size_t n, double on_rate_qps,
                                 double on_ms, double off_ms,
                                 std::uint64_t seed) {
  if (!(on_rate_qps > 0) || !(on_ms > 0) || off_ms < 0)
    throw std::invalid_argument(
        "bursty_trace: need on_rate_qps > 0, on_ms > 0, off_ms >= 0");
  Pcg32 rng(seed, 0xb1257a1e);
  std::vector<double> ts(n);
  const double scale = 1e3 / on_rate_qps;
  const double period = on_ms + off_ms;
  // The Poisson clock only ticks during ON windows; map cumulative ON
  // time to wall time by inserting one OFF gap per completed window.
  double on_elapsed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    on_elapsed += -std::log(1.0 - rng.next_double()) * scale;
    const double k = std::floor(on_elapsed / on_ms);
    ts[i] = k * period + (on_elapsed - k * on_ms);
  }
  return ts;
}

}  // namespace tt
