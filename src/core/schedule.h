// Variant selection and launch-shape helpers: the decision procedure the
// paper's system applies before launching a traversal kernel.
//
//   1. static call-set analysis says unguided (lockstep always legal) or
//      guided (lockstep legal only with the section-4.3 equivalence
//      annotation);
//   2. the runtime profiler says whether the input looks sorted;
//   3. lockstep is chosen iff legal and sorted-looking (section 4.4).
#pragma once

#include <cstddef>

#include "core/gpu_executors.h"
#include "core/ir/callset_analysis.h"
#include "core/profiler.h"
#include "simt/device_config.h"

namespace tt {

struct VariantDecision {
  bool lockstep = false;
  bool legal_lockstep = false;
  double profiled_similarity = 0;
  GpuMode mode() const { return GpuMode{/*autoropes=*/true, lockstep}; }
};

// Combine the static analysis of the kernel's IR description with a
// runtime similarity profile of the actual input.
template <TraversalKernel K>
VariantDecision decide_variant(const K& k, const ir::AnalysisReport& report,
                               bool callsets_annotated_equivalent,
                               std::size_t profile_samples = 32,
                               std::uint64_t seed = 1) {
  VariantDecision d;
  d.legal_lockstep =
      report.lockstep_eligible ||
      (report.call_sets.size() > 1 && callsets_annotated_equivalent);
  ProfileReport p = profile_similarity(k, profile_samples, seed);
  d.profiled_similarity = p.mean_similarity;
  d.lockstep = d.legal_lockstep && p.looks_sorted;
  return d;
}

struct LaunchShape {
  std::size_t n_warps = 0;
  std::size_t resident_warps = 0;     // bounded by occupancy
  std::size_t smem_stack_bytes = 0;   // lockstep per-warp stack footprint
  bool smem_fits = true;
};

LaunchShape launch_shape(std::size_t n_points, int stack_bound,
                         std::size_t warp_entry_bytes,
                         const DeviceConfig& cfg);

}  // namespace tt
