#include "core/static_ropes.h"

#include <stdexcept>

#include "util/timer.h"

namespace tt {

bool tree_is_dfs_layout(const LinearTree& tree) {
  for (NodeId id = 0; id < tree.n_nodes; ++id) {
    for (int k = 0; k < tree.fanout; ++k) {
      NodeId c = tree.child(id, k);
      if (c == kNullNode) continue;
      if (c != id + 1) return false;
      break;
    }
  }
  return true;
}

StaticRopes try_install_ropes(const LinearTree& tree) {
  return tree_is_dfs_layout(tree) ? install_ropes(tree) : StaticRopes{};
}

StaticRopes install_ropes(const LinearTree& tree) {
  WallTimer timer;
  // The stackless traversal descends with `cur + 1`, which is only the
  // first child under the left-biased DFS layout; refuse anything else
  // (e.g. a BFS relayout) rather than traverse garbage.
  if (!tree_is_dfs_layout(tree))
    throw std::invalid_argument(
        "install_ropes: tree is not in left-biased DFS layout");
  StaticRopes r;
  const auto n = static_cast<std::size_t>(tree.n_nodes);
  r.rope.assign(n, StaticRopes::kEndOfTraversal);

  // subtree_end[n] = one past the last DFS id in n's subtree. Reverse scan:
  // every child's extent is known before its parent's.
  std::vector<NodeId> subtree_end(n);
  for (NodeId id = static_cast<NodeId>(n) - 1; id >= 0; --id) {
    NodeId end = id + 1;
    for (int k = 0; k < tree.fanout; ++k) {
      NodeId c = tree.child(id, k);
      if (c != kNullNode && subtree_end[static_cast<std::size_t>(c)] > end)
        end = subtree_end[static_cast<std::size_t>(c)];
    }
    subtree_end[static_cast<std::size_t>(id)] = end;
    r.rope[static_cast<std::size_t>(id)] =
        end < static_cast<NodeId>(n) ? end : StaticRopes::kEndOfTraversal;
  }
  // A rope may only point forward (DFS monotonicity is what makes the
  // lockstep resume rule in ropes_executor.h sound).
  r.install_ms = timer.elapsed_ms();
  return r;
}

}  // namespace tt
