// Multi-device sharding layer: split one LaunchSpec's point range across N
// simulated devices (ROADMAP "multi-SM / multi-device sharding with async
// transfer overlap"; the runtime-level sibling of Sakka & Kulkarni's
// compiler-level traversal fusion -- one residency's work spread over N
// devices instead of N traversals fused into one residency).
//
// The boundary (DESIGN.md section 3.4):
//
//   - The *canonical measurement* stays single-device: run_sharded first
//     executes the spec through run_launch_pool (which resolves
//     auto_select and charges the sampling), and that launch's results,
//     counters, stats and TimeBreakdown are the baseline every sharded
//     number is compared against (single_device_ms = baseline compute +
//     one synchronous round trip).
//   - Chunks (logical 32-point warps) are assigned to devices by
//     assign_devices (core/batch_scheduler.h) using the baseline's own
//     visit counters as modelled chunk costs -- kWorkStealing's greedy
//     earliest-finish by default.
//   - Each device then re-executes exactly its chunk list through
//     LaunchRun::run_shard_slot with its own result/counter storage, its
//     own L2 slice size (derived from the device's own grid), its own
//     KernelStats and its own modelled clock (per-device TimeBreakdown +
//     PipelinedTransfer). Devices share nothing but the read-only address
//     space.
//   - Results merge back in canonical point order: every logical warp's
//     result bytes and visit counters are copied from its owning device's
//     arrays into the merged LaunchResult, which is byte-identical to the
//     single-device run for every variant and device count (pinned by
//     tests/core/device_group_test.cpp and the variant fuzzer's sharded
//     axis).
//
// Per-device time uses the pipelined transfer mode
// (TransferModel::pipelined_round_trip): the device's share of the upload
// is strip-mined into chunk_points-sized pieces whose copy-in overlaps
// compute, so busy_ms = exposed transfer + compute. The group's makespan
// is the slowest device's busy time; speedup = single_device_ms /
// makespan_ms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/batch_scheduler.h"
#include "simt/transfer_model.h"

namespace tt {

namespace obs {
class ChromeTraceCollector;  // obs/chrome_trace.h
}

struct DeviceGroupConfig {
  std::size_t devices = 1;
  DeviceConfig device;  // every simulated device's model (homogeneous group)
  TransferModel transfer;
  // Chunk -> device assignment policy (assign_devices). kWorkStealing is
  // the greedy earliest-finish default; round_robin / sequential are the
  // home-assignment baselines.
  BatchPolicy policy = BatchPolicy::kWorkStealing;
  // Pipelined upload granularity: points per copy-in chunk. Larger chunks
  // mean fewer, coarser copies (less overlap); <= 1 degenerates to one
  // point per chunk.
  std::size_t chunk_points = 1024;
  // When set, every device opens a Chrome-trace track "dev<d>/<kernel>"
  // carrying its warp activity plus one launch-scope kCopy event per
  // pipelined upload chunk, so copy/compute overlap is visible per device
  // in Perfetto.
  obs::ChromeTraceCollector* chrome = nullptr;
};

// One device's share of a sharded launch.
struct DeviceShard {
  std::size_t device = 0;
  std::size_t chunks = 0;  // logical warps assigned
  std::size_t points = 0;
  std::size_t rounds = 0;  // residency refills: ceil(chunks / grid)
  std::size_t steals = 0;  // chunks taken off their home device
  double cost = 0;         // modelled assignment cost (visit-count units)
  std::uint64_t upload_bytes = 0;    // the device's share of the upload
  std::uint64_t download_bytes = 0;  // ... and of the results coming back
  KernelStats stats;       // isolated per-device counters
  TimeBreakdown time;      // per-device cost-model estimate
  PipelinedTransfer transfer;  // chunked copy-in overlapping compute
  double busy_ms = 0;      // transfer.total_ms (the device's modelled clock)
};

// A sharded run: the merged canonical-order result plus per-device
// accounting. `merged` carries the single-device baseline's stats / time /
// selection (the canonical measurement) with results and visit counters
// assembled from the devices' own arrays -- byte-identical to the
// baseline's by the sharding contract.
struct ShardedRun {
  LaunchResult merged;
  std::vector<DeviceShard> devices;
  std::size_t chunk_points = 0;
  BatchPolicy policy = BatchPolicy::kWorkStealing;
  double single_device_ms = 0;  // baseline compute + synchronous round trip
  double makespan_ms = 0;       // slowest device's busy time
  double speedup = 0;           // single_device_ms / makespan_ms

  [[nodiscard]] double copy_in_ms() const;   // summed over devices
  [[nodiscard]] double overlap_ms() const;   // transfer hidden under compute
  [[nodiscard]] double exposed_ms() const;   // transfer still on the timeline
};

// Shard `spec` across cfg.devices simulated devices. Resolves auto_select
// once (the baseline run), assigns chunks by modelled cost under
// cfg.policy, executes each device's chunk list in isolation
// and merges results in canonical point order. Throws std::invalid_argument
// on a missing kernel/space or cfg.devices == 0. A baseline failure (rope
// stack overflow) reports through merged.error with no device execution.
[[nodiscard]] ShardedRun run_sharded(const LaunchSpec& spec,
                                     std::uint64_t upload_bytes,
                                     std::uint64_t download_bytes,
                                     const DeviceGroupConfig& cfg);

// ---------------------------------------------------------------------
// Report-facing bundle (obs/run_report.h schema-v6 "devices" block).
// ---------------------------------------------------------------------

// One kernel's sharded run, as the report serializes it.
struct ShardingKernelReport {
  std::string kernel_name;
  std::size_t n_points = 0;
  std::size_t n_chunks = 0;  // logical warps
  Variant variant = Variant::kAutoNolockstep;  // executed composition
  double single_device_ms = 0;
  double makespan_ms = 0;
  double speedup = 0;
  std::vector<DeviceShard> devices;
  std::string error;  // empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

// One point of the devices x chunk-size sweep (aggregated over the pool).
struct ShardingSweepPoint {
  std::size_t devices = 0;
  std::size_t chunk_points = 0;
  double single_device_ms = 0;  // summed over the pool
  double makespan_ms = 0;       // summed per-kernel makespans
  double speedup = 0;
  double copy_in_ms = 0;
  double overlap_ms = 0;
  double exposed_ms = 0;
  double overlap_efficiency = 0;  // overlap / copy-in (0 when no copy-in)
};

// Everything the RunReport "devices" block serializes.
struct ShardingRunSummary {
  std::size_t devices = 1;
  std::size_t chunk_points = 0;
  BatchPolicy policy = BatchPolicy::kWorkStealing;
  Variant variant = Variant::kAutoSelect;  // the submitted composition
  TransferModel transfer;
  std::vector<ShardingKernelReport> kernels;
  std::vector<ShardingSweepPoint> sweep;

  [[nodiscard]] double single_device_ms() const;  // summed over kernels
  [[nodiscard]] double makespan_ms() const;
  [[nodiscard]] double speedup() const;
};

}  // namespace tt
