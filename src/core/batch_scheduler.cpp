#include "core/batch_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include <omp.h>

#include "simt/cost_model.h"
#include "simt/executor.h"
#include "simt/l2cache.h"
#include "util/timer.h"

namespace tt {

const char* batch_policy_name(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kRoundRobin: return "round_robin";
    case BatchPolicy::kSequential: return "sequential";
  }
  return "?";
}

BatchPolicy batch_policy_from_name(const std::string& name) {
  if (name == "round_robin") return BatchPolicy::kRoundRobin;
  if (name == "sequential") return BatchPolicy::kSequential;
  throw std::invalid_argument(
      "batch_policy_from_name: unknown policy '" + name +
      "' (valid: round_robin, sequential)");
}

BatchSchedule BatchScheduler::schedule() const {
  BatchSchedule s;
  std::vector<std::size_t> waves(launches_.size(), 0);
  std::size_t max_waves = 0;
  for (std::size_t i = 0; i < launches_.size(); ++i) {
    const Entry& e = launches_[i];
    s.residency += e.grid;
    s.total_chunks += e.n_warps;
    waves[i] = e.grid == 0 ? 0 : (e.n_warps + e.grid - 1) / e.grid;
    max_waves = std::max(max_waves, waves[i]);
  }
  s.order.reserve(s.total_chunks);

  auto push_wave = [&](std::size_t launch, std::size_t wave) {
    const Entry& e = launches_[launch];
    const std::size_t begin = wave * e.grid;
    const std::size_t end = std::min(e.n_warps, begin + e.grid);
    for (std::size_t c = begin; c < end; ++c)
      s.order.push_back(ChunkRef{static_cast<std::uint32_t>(launch),
                                 static_cast<std::uint32_t>(c)});
  };

  switch (policy_) {
    case BatchPolicy::kRoundRobin:
      // Wave w issues one residency-set per launch before any launch's
      // wave w+1; launches with fewer waves simply drop out early.
      for (std::size_t w = 0; w < max_waves; ++w)
        for (std::size_t l = 0; l < launches_.size(); ++l)
          if (w < waves[l]) push_wave(l, w);
      s.rounds = max_waves;
      break;
    case BatchPolicy::kSequential:
      for (std::size_t l = 0; l < launches_.size(); ++l) {
        for (std::size_t w = 0; w < waves[l]; ++w) push_wave(l, w);
        s.rounds += waves[l];
      }
      break;
  }

  for (std::size_t i = 1; i < s.order.size(); ++i)
    if (s.order[i].launch != s.order[i - 1].launch) ++s.switches;
  return s;
}

BatchRun run_gpu_batch(std::span<const LaunchSpec> specs,
                       const DeviceConfig& cfg, BatchPolicy policy) {
  BatchRun out;
  out.policy = policy;

  struct Prep {
    GpuMode mode;  // resolved (auto_select replaced by its dispatch)
    std::optional<SelectionInfo> selection;
    std::unique_ptr<LaunchRun> run;
    std::vector<KernelStats> per_slot;
    std::size_t slice_bytes = 0;
  };
  std::vector<Prep> preps(specs.size());
  BatchScheduler sched(policy);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const LaunchSpec& spec = specs[i];
    if (!spec.kernel || !spec.space)
      throw std::invalid_argument("run_gpu_batch: LaunchSpec " +
                                  std::to_string(i) +
                                  " is missing its kernel or address space");
    Prep& pr = preps[i];
    GpuMode mode = spec.mode;
    if (mode.variant() == Variant::kAutoSelect) {
      // Per-launch section-4.4 resolution, exactly like run_gpu_sim's
      // early dispatch: sample, choose the autoropes composition, and
      // charge the sampling to this launch's cost model afterwards.
      if (mode.profile_samples == 0)
        throw std::invalid_argument(
            "run_gpu_batch: auto_select needs profile_samples >= 1");
      const ProfileReport p =
          spec.kernel->profile(mode.profile_samples, mode.profile_seed);
      mode.auto_select = false;
      mode.autoropes = true;
      mode.lockstep = p.looks_sorted;
      SelectionInfo sel;
      sel.mean_similarity = p.mean_similarity;
      sel.baseline_similarity = p.baseline_similarity;
      sel.samples = p.samples;
      sel.threshold = p.threshold;
      sel.chosen = mode.variant();
      sel.sampling_cycles =
          static_cast<double>(p.sampled_visits) * (cfg.c_visit + cfg.c_step);
      pr.selection = sel;
    }
    pr.mode = mode;
    pr.run = spec.kernel->prepare(*spec.space, cfg, mode, spec.trace,
                                  spec.profile,
                                  static_cast<std::uint32_t>(i));
    pr.per_slot.assign(pr.run->shape.grid, KernelStats{});
    // The launch's own L2 slice size -- the same formula run_warps uses
    // for a solo run over this launch's grid (byte-identity requires it).
    const std::size_t grid = pr.run->shape.grid;
    const std::size_t resident = std::min<std::size_t>(
        grid == 0 ? 1 : grid,
        static_cast<std::size_t>(cfg.max_resident_warps()));
    pr.slice_bytes = cfg.l2_bytes / resident;
    if (spec.trace)
      spec.trace->begin(pr.run->shape.n_warps, omp_get_max_threads());
    if (spec.profile) spec.profile->begin(omp_get_max_threads());
    sched.add_launch(pr.run->shape);
  }

  const BatchSchedule bs = sched.schedule();
  out.residency = bs.residency;
  out.total_chunks = bs.total_chunks;
  out.rounds = bs.rounds;
  out.switches = bs.switches;

  // The concurrent-residency pool: every launch's physical warp slots,
  // simulated in parallel. Slot state is fully launch-private, so OpenMP
  // scheduling (and the issue policy above) cannot change any launch's
  // measurements -- only the schedule accounting differs across policies.
  struct Slot {
    std::uint32_t launch = 0;
    std::uint32_t p = 0;
  };
  std::vector<Slot> slots;
  slots.reserve(out.residency);
  for (std::size_t i = 0; i < preps.size(); ++i)
    for (std::size_t p = 0; p < preps[i].run->shape.grid; ++p)
      slots.push_back(Slot{static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(p)});

  WallTimer timer;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t si = 0; si < static_cast<std::int64_t>(slots.size());
       ++si) {
    const Slot sl = slots[static_cast<std::size_t>(si)];
    Prep& pr = preps[sl.launch];
    if (cfg.model_l2) {
      L2Cache slice(pr.slice_bytes, cfg.l2_line_bytes, cfg.l2_assoc);
      pr.run->run_slot(sl.p, pr.per_slot[sl.p], &slice);
    } else {
      pr.run->run_slot(sl.p, pr.per_slot[sl.p], nullptr);
    }
  }
  out.sim_wall_ms = timer.elapsed_ms();

  out.launches.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Prep& pr = preps[i];
    const LaunchSpec& spec = specs[i];
    LaunchResult r;
    r.kernel_name = spec.kernel->name();
    r.batch_index = i;
    r.variant = pr.mode.variant();
    r.n_points = pr.run->shape.n;
    r.n_warps = pr.run->shape.n_warps;
    r.result_stride = pr.run->result_stride();
    if (pr.run->overflow.overflowed()) {
      // Isolation: this launch fails with a name+index-prefixed error and
      // zeroed numbers; sibling launches are untouched.
      r.error = std::string("kernel ") + r.kernel_name + " (batch " +
                std::to_string(i) + "): rope stack overflow (variant " +
                variant_name(r.variant) + ", warp " +
                std::to_string(pr.run->overflow.warp()) + ", " +
                std::to_string(pr.run->overflow.entries()) +
                " entries, stack_bound " +
                std::to_string(pr.run->shape.stack_bound) + ")";
      out.launches.push_back(std::move(r));
      continue;
    }
    r.stats = merge_stats(pr.per_slot);
    r.time = estimate_time_balanced(instr_cycles_of(pr.per_slot), r.stats, cfg);
    if (pr.selection) {
      // Same accounting as run_gpu_sim's auto_select dispatch: sampling
      // runs serially before the kernel, charged to compute time.
      r.selection = pr.selection;
      r.stats.note_sampling_cycles(pr.selection->sampling_cycles);
      const double cycles_per_ms = cfg.clock_ghz * 1e6;
      r.time.compute_ms += pr.selection->sampling_cycles / cycles_per_ms;
      r.time.total_ms = std::max(r.time.compute_ms, r.time.memory_ms);
      r.time.memory_bound = r.time.memory_ms > r.time.compute_ms;
      if (spec.trace)
        spec.trace->record_launch(
            obs::TraceEventKind::kSelect, 0xffffffffu,
            static_cast<std::uint32_t>(pr.selection->samples), 0,
            pr.selection->chosen == Variant::kAutoLockstep ? 1u : 0u);
    }
    if (spec.profile) {
      // Build AFTER the sampling charge so reconciliation covers it.
      const obs::ProfileCollector merged = spec.profile->merged();
      r.profile = obs::make_profile_report(r.stats, cfg, &merged);
    }
    const std::byte* data =
        static_cast<const std::byte*>(pr.run->result_data());
    r.results.assign(data, data + r.n_points * r.result_stride);
    r.per_point_visits = std::move(pr.run->per_point_visits);
    r.per_warp_pops = std::move(pr.run->per_warp_pops);
    out.launches.push_back(std::move(r));
  }
  return out;
}

}  // namespace tt
