#include "core/batch_scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace tt {

const char* batch_policy_name(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kRoundRobin: return "round_robin";
    case BatchPolicy::kSequential: return "sequential";
  }
  return "?";
}

BatchPolicy batch_policy_from_name(const std::string& name) {
  if (name == "round_robin") return BatchPolicy::kRoundRobin;
  if (name == "sequential") return BatchPolicy::kSequential;
  throw std::invalid_argument(
      "batch_policy_from_name: unknown policy '" + name +
      "' (valid: round_robin, sequential)");
}

BatchSchedule BatchScheduler::schedule() const {
  BatchSchedule s;
  std::vector<std::size_t> waves(launches_.size(), 0);
  std::size_t max_waves = 0;
  for (std::size_t i = 0; i < launches_.size(); ++i) {
    const Entry& e = launches_[i];
    s.residency += e.grid;
    s.total_chunks += e.n_warps;
    waves[i] = e.grid == 0 ? 0 : (e.n_warps + e.grid - 1) / e.grid;
    max_waves = std::max(max_waves, waves[i]);
  }
  s.order.reserve(s.total_chunks);

  auto push_wave = [&](std::size_t launch, std::size_t wave) {
    const Entry& e = launches_[launch];
    const std::size_t begin = wave * e.grid;
    const std::size_t end = std::min(e.n_warps, begin + e.grid);
    for (std::size_t c = begin; c < end; ++c)
      s.order.push_back(ChunkRef{static_cast<std::uint32_t>(launch),
                                 static_cast<std::uint32_t>(c)});
  };

  switch (policy_) {
    case BatchPolicy::kRoundRobin:
      // Wave w issues one residency-set per launch before any launch's
      // wave w+1; launches with fewer waves simply drop out early.
      for (std::size_t w = 0; w < max_waves; ++w)
        for (std::size_t l = 0; l < launches_.size(); ++l)
          if (w < waves[l]) push_wave(l, w);
      s.rounds = max_waves;
      break;
    case BatchPolicy::kSequential:
      for (std::size_t l = 0; l < launches_.size(); ++l) {
        for (std::size_t w = 0; w < waves[l]; ++w) push_wave(l, w);
        s.rounds += waves[l];
      }
      break;
  }

  for (std::size_t i = 1; i < s.order.size(); ++i)
    if (s.order[i].launch != s.order[i - 1].launch) ++s.switches;
  return s;
}

}  // namespace tt
