#include "core/batch_scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace tt {

const char* batch_policy_name(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kRoundRobin: return "round_robin";
    case BatchPolicy::kSequential: return "sequential";
    case BatchPolicy::kWorkStealing: return "work_stealing";
  }
  return "?";
}

namespace {
constexpr BatchPolicy kAllBatchPolicies[] = {
    BatchPolicy::kRoundRobin, BatchPolicy::kSequential,
    BatchPolicy::kWorkStealing};
}  // namespace

BatchPolicy batch_policy_from_name(const std::string& name) {
  for (BatchPolicy p : kAllBatchPolicies)
    if (name == batch_policy_name(p)) return p;
  // Same shape as variant_from_name: list every valid spelling so a typo
  // self-diagnoses at the CLI.
  std::string valid;
  for (BatchPolicy p : kAllBatchPolicies) {
    if (!valid.empty()) valid += ", ";
    valid += batch_policy_name(p);
  }
  throw std::invalid_argument("batch_policy_from_name: unknown policy '" +
                              name + "' (valid: " + valid + ")");
}

BatchSchedule BatchScheduler::schedule() const {
  BatchSchedule s;
  std::vector<std::size_t> waves(launches_.size(), 0);
  std::size_t max_waves = 0;
  for (std::size_t i = 0; i < launches_.size(); ++i) {
    const Entry& e = launches_[i];
    s.residency += e.grid;
    s.total_chunks += e.n_warps;
    waves[i] = e.grid == 0 ? 0 : (e.n_warps + e.grid - 1) / e.grid;
    max_waves = std::max(max_waves, waves[i]);
  }
  s.order.reserve(s.total_chunks);

  auto push_wave = [&](std::size_t launch, std::size_t wave) {
    const Entry& e = launches_[launch];
    const std::size_t begin = wave * e.grid;
    const std::size_t end = std::min(e.n_warps, begin + e.grid);
    for (std::size_t c = begin; c < end; ++c)
      s.order.push_back(ChunkRef{static_cast<std::uint32_t>(launch),
                                 static_cast<std::uint32_t>(c)});
  };

  switch (policy_) {
    case BatchPolicy::kRoundRobin:
    case BatchPolicy::kWorkStealing:
      // Wave w issues one residency-set per launch before any launch's
      // wave w+1; launches with fewer waves simply drop out early. For
      // work_stealing this IS the earliest-finish order: within one
      // residency all chunks have the same modelled issue cost, so the
      // greedy degenerates to the interleave (the cost-aware part of the
      // policy lives in assign_devices).
      for (std::size_t w = 0; w < max_waves; ++w)
        for (std::size_t l = 0; l < launches_.size(); ++l)
          if (w < waves[l]) push_wave(l, w);
      s.rounds = max_waves;
      break;
    case BatchPolicy::kSequential:
      for (std::size_t l = 0; l < launches_.size(); ++l) {
        for (std::size_t w = 0; w < waves[l]; ++w) push_wave(l, w);
        s.rounds += waves[l];
      }
      break;
  }

  for (std::size_t i = 1; i < s.order.size(); ++i)
    if (s.order[i].launch != s.order[i - 1].launch) ++s.switches;
  return s;
}

DeviceAssignment assign_devices(std::span<const double> chunk_costs,
                                std::size_t n_devices, BatchPolicy policy) {
  if (n_devices == 0)
    throw std::invalid_argument("assign_devices: n_devices must be >= 1");
  DeviceAssignment a;
  a.device.resize(chunk_costs.size());
  a.load.assign(n_devices, 0.0);
  a.chunks.assign(n_devices, 0);
  a.steals.assign(n_devices, 0);
  const std::size_t n = chunk_costs.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t d = 0;
    switch (policy) {
      case BatchPolicy::kRoundRobin:
        d = i % n_devices;
        break;
      case BatchPolicy::kSequential:
        // Balanced contiguous blocks: device d takes chunks
        // [d*n/N, (d+1)*n/N).
        d = i * n_devices / n;
        break;
      case BatchPolicy::kWorkStealing:
        // Online earliest-finish greedy: the device with the least
        // accumulated cost takes the chunk (ties to the lowest index, so
        // the assignment is deterministic).
        for (std::size_t c = 1; c < n_devices; ++c)
          if (a.load[c] < a.load[d]) d = c;
        break;
    }
    a.device[i] = static_cast<std::uint32_t>(d);
    a.load[d] += chunk_costs[i];
    ++a.chunks[d];
    if (d != i % n_devices) ++a.steals[d];
  }
  return a;
}

}  // namespace tt
