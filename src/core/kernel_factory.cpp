#include "core/kernel_factory.h"

#include <stdexcept>
#include <utility>

namespace tt {

PointOrder point_order_from_name(const std::string& name) {
  for (PointOrder o :
       {PointOrder::kMorton, PointOrder::kTree, PointOrder::kShuffled})
    if (name == point_order_name(o)) return o;
  throw std::invalid_argument(
      "point_order_from_name: unknown order '" + name +
      "' (valid: morton, tree, shuffled)");
}

KernelFactory& KernelFactory::instance() {
  static KernelFactory f;
  return f;
}

void KernelFactory::register_builder(std::string name, Builder build) {
  if (name.empty())
    throw std::invalid_argument("KernelFactory: empty kernel name");
  if (!build)
    throw std::invalid_argument("KernelFactory: null builder for '" + name +
                                "'");
  builders_.insert_or_assign(std::move(name), std::move(build));
}

bool KernelFactory::contains(const std::string& name) const {
  return builders_.count(name) != 0;
}

std::vector<std::string> KernelFactory::names() const {
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [name, build] : builders_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::shared_ptr<KernelHandle> KernelFactory::make(const std::string& name,
                                                  const KernelRequest& req,
                                                  GpuAddressSpace& space) const {
  auto it = builders_.find(name);
  if (it == builders_.end()) {
    std::string valid;
    for (const auto& [have, build] : builders_) {
      if (!valid.empty()) valid += ", ";
      valid += have;
    }
    throw std::invalid_argument("kernel_factory: unknown kernel '" + name +
                                "' (valid: " + valid + ")");
  }
  return it->second(req, space);
}

}  // namespace tt
