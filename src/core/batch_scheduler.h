// Batched multi-kernel launches: interleave chunks from several traversal
// kernels into one simulated device residency (ROADMAP "multi-kernel
// batched runs"; the direction Sakka et al.'s traversal fusion pushes at
// the compiler level).
//
// The scheduler strip-mines each launch exactly the way its solo run
// would (same LaunchGeometry: warp ranges, Figure 9b grid, stack arena) and
// interleaves the chunk streams under a selectable policy:
//
//   kRoundRobin   wave-interleaved: each wave issues one residency-set of
//                 chunks from every launch before any launch's next wave.
//   kSequential   all chunks of launch 0, then launch 1, ... -- the
//                 as-today baseline the equivalence tests compare against.
//   kWorkStealing greedy earliest-finish. As a chunk *order* (single
//                 residency, uniform chunk costs) it degenerates to the
//                 round-robin interleave; its real job is the cost-aware
//                 chunk -> device assignment below (assign_devices), where
//                 each chunk goes to the device that would finish it first
//                 and a chunk landing off its home device counts as a
//                 steal.
//
// Batching is results-neutral by construction: every (launch, slot) pair
// owns its full simulation state -- stack arena slice, L2 slice sized by
// the launch's own grid, KernelStats, visit counters -- and slots walk
// their chunks in the same ascending order as solo, so each launch's
// outputs and per-launch KernelStats are byte-identical to its solo run
// under every policy. The policy shapes only the schedule accounting
// (rounds / switches) and the batch-level transfer amortization: one
// launch overhead for the whole batch instead of one per kernel.
//
// Since the serving redesign (core/serving.h, DESIGN.md section 3.3) this
// file is pure planning + the shared BatchRun result type. Execution
// lives behind the admission--dispatch split: ServingSession admits
// queries and drains waves, run_launch_pool simulates a wave's slots, and
// each drained wave feeds its shapes back through BatchScheduler for the
// accounting below. run_gpu_batch survives as a thin closed-batch adapter
// over that session API (everything submitted at t=0, one wave),
// byte-identical to the pre-redesign implementation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/launch.h"
#include "simt/device_config.h"

namespace tt {

enum class BatchPolicy : std::uint8_t {
  kRoundRobin = 0,
  kSequential = 1,
  kWorkStealing = 2,
};

[[nodiscard]] const char* batch_policy_name(BatchPolicy p);
// "round_robin" / "sequential" / "work_stealing"; throws
// std::invalid_argument otherwise (the error lists the valid spellings,
// like variant_from_name).
[[nodiscard]] BatchPolicy batch_policy_from_name(const std::string& name);

// One scheduled chunk: launch index within the batch + logical warp id.
struct ChunkRef {
  std::uint32_t launch = 0;
  std::uint32_t chunk = 0;
};

// The policy-ordered chunk issue sequence plus its summary accounting.
struct BatchSchedule {
  std::vector<ChunkRef> order;
  std::size_t residency = 0;     // sum of the launches' physical-warp grids
  std::size_t total_chunks = 0;  // sum of the launches' logical warps
  // Residency refills: max per-launch wave count under round-robin (waves
  // overlap across launches), their sum under sequential.
  std::size_t rounds = 0;
  std::size_t switches = 0;  // adjacent order entries from different launches
};

// Builds the interleaved schedule from per-launch shapes. Pure planning:
// execution state lives in LaunchRun; ServingSession (core/serving.h)
// consumes the schedule for per-wave accounting while run_launch_pool
// drives the (launch, slot) pool directly.
class BatchScheduler {
 public:
  explicit BatchScheduler(BatchPolicy policy) : policy_(policy) {}

  void add_launch(const LaunchGeometry& shape) {
    launches_.push_back(Entry{shape.n_warps, shape.grid});
  }

  [[nodiscard]] BatchPolicy policy() const { return policy_; }
  [[nodiscard]] std::size_t n_launches() const { return launches_.size(); }
  [[nodiscard]] BatchSchedule schedule() const;

 private:
  struct Entry {
    std::size_t n_warps = 0;
    std::size_t grid = 0;
  };
  BatchPolicy policy_;
  std::vector<Entry> launches_;
};

// ---------------------------------------------------------------------
// Chunk -> device assignment (core/device_group.h's planning step).
// ---------------------------------------------------------------------

// The assignment of a launch's chunks (logical warps) across N simulated
// devices, plus per-device accounting. `device[i]` is chunk i's device;
// chunk i's *home* device is i % n_devices, and a chunk assigned elsewhere
// counts as a steal on the device that took it.
struct DeviceAssignment {
  std::vector<std::uint32_t> device;  // per chunk, size == chunk_costs.size()
  std::vector<double> load;           // accumulated modelled cost per device
  std::vector<std::size_t> chunks;    // chunks per device
  std::vector<std::size_t> steals;    // chunks taken off their home device
};

// Assign chunks with modelled costs to `n_devices` devices under `policy`:
//   kRoundRobin    chunk i -> device i % n (every chunk stays home)
//   kSequential    contiguous blocks, balanced by chunk count
//   kWorkStealing  greedy earliest-finish: each chunk, in issue order, goes
//                  to the device with the least accumulated cost (ties to
//                  the lowest index) -- the classic online makespan greedy
// Deterministic for a given (costs, n_devices, policy). Throws
// std::invalid_argument on n_devices == 0.
[[nodiscard]] DeviceAssignment assign_devices(std::span<const double> chunk_costs,
                                              std::size_t n_devices,
                                              BatchPolicy policy);

// A batched run: per-launch isolated measurements + schedule accounting.
struct BatchRun {
  std::vector<LaunchResult> launches;
  BatchPolicy policy = BatchPolicy::kRoundRobin;
  std::size_t residency = 0;
  std::size_t total_chunks = 0;
  std::size_t rounds = 0;
  std::size_t switches = 0;
  double sim_wall_ms = 0;  // host cost of the simulation (diagnostic)
};

// The non-template sibling of run_gpu_sim: simulate every LaunchSpec as
// one batched device residency. auto_select modes are resolved per launch
// (sampling charged to that launch's cost model, like solo); a launch
// whose rope stack overflows reports through LaunchResult::error --
// prefixed with its kernel name and batch index -- without poisoning
// sibling launches. Now a compatibility adapter over ServingSession's
// closed-batch mode (defined in core/serving.cpp); byte-identical to the
// pre-session implementation.
[[nodiscard]] BatchRun run_gpu_batch(std::span<const LaunchSpec> specs,
                                     const DeviceConfig& cfg,
                                     BatchPolicy policy = BatchPolicy::kRoundRobin);

}  // namespace tt
