#include "core/schedule.h"

#include <algorithm>

namespace tt {

LaunchShape launch_shape(std::size_t n_points, int stack_bound,
                         std::size_t warp_entry_bytes,
                         const DeviceConfig& cfg) {
  LaunchShape s;
  s.n_warps = (n_points + static_cast<std::size_t>(cfg.warp_size) - 1) /
              static_cast<std::size_t>(cfg.warp_size);
  s.smem_stack_bytes =
      static_cast<std::size_t>(stack_bound) * warp_entry_bytes;

  // Occupancy: resident warps per SM limited by the shared-memory stacks.
  std::size_t per_sm = static_cast<std::size_t>(cfg.resident_warps_per_sm);
  if (s.smem_stack_bytes > 0) {
    std::size_t by_smem = cfg.shared_mem_per_sm / s.smem_stack_bytes;
    s.smem_fits = by_smem >= 1;
    per_sm = std::max<std::size_t>(1, std::min(per_sm, by_smem));
  }
  s.resident_warps =
      std::min(s.n_warps, per_sm * static_cast<std::size_t>(cfg.num_sms));
  return s;
}

}  // namespace tt
