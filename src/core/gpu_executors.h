// GPU-simulated executors: the four variants the paper evaluates.
//
//   autoropes, non-lockstep  -- Figure 6/7/9b: per-lane iterative traversal
//     over an interleaved global rope stack. Control re-converges at the
//     loop head every iteration, but once lanes' traversals diverge their
//     node loads stop coalescing (section 4.1).
//   autoropes, lockstep      -- Figure 8: one rope stack per warp (shared
//     memory) carrying a lane mask; the warp traverses the union of its
//     lanes' traversals, keeping node loads fully coalesced at the price of
//     work expansion (section 4.2). Guided kernels annotated
//     kCallSetsEquivalent use the per-node majority vote of section 4.3.
//   recursive, non-lockstep  -- the naive CUDA port: per-lane recursion with
//     call frames spilled to (thread-interleaved) local memory. Hardware
//     reconverges only at call boundaries, modelled by the max-depth rule:
//     each step, only the lanes at the current deepest call level execute.
//   recursive, lockstep      -- recursion with the explicit masking of the
//     paper's footnote 5: the warp recurses over the union traversal, still
//     paying call/return overhead and frame traffic per level.
//
// All variants execute the *same kernel semantics*; only event counts (and
// therefore modelled time) differ. Equivalence across variants is enforced
// by integration tests.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rope_stack.h"
#include "core/traversal_kernel.h"
#include "core/variant.h"
#include "obs/trace.h"
#include "simt/address_space.h"
#include "simt/cost_model.h"
#include "simt/device_config.h"
#include "simt/executor.h"
#include "simt/kernel_stats.h"
#include "simt/warp_memory.h"
#include "util/timer.h"

namespace tt {

template <class K>
struct GpuRun {
  std::vector<typename K::Result> results;
  KernelStats stats;
  TimeBreakdown time;
  std::size_t n_warps = 0;
  // Non-lockstep: per-point node visits. Lockstep: per-warp pop counts
  // (every point of the warp shares the warp's union traversal). Table 2's
  // work-expansion metric combines the two.
  std::vector<std::uint32_t> per_point_visits;
  std::vector<std::uint32_t> per_warp_pops;
  double sim_wall_ms = 0;  // host cost of the simulation (diagnostic)

  // The paper's "Avg. # Nodes" column.
  [[nodiscard]] double avg_nodes() const {
    if (!per_warp_pops.empty()) {
      double s = 0;
      for (auto v : per_warp_pops) s += v;
      return s / static_cast<double>(per_warp_pops.size());
    }
    double s = 0;
    for (auto v : per_point_visits) s += v;
    return per_point_visits.empty() ? 0 : s / static_cast<double>(per_point_visits.size());
  }
};

namespace detail {

template <class K>
using ChildOf = Child<typename K::UArg, typename K::LArg>;

// Bytes of one interleaved global rope-stack entry (node id + arguments),
// padded to 4-byte granularity like the generated CUDA code would.
template <class K>
constexpr std::uint32_t stack_entry_bytes(bool lockstep) {
  std::uint32_t b = lockstep ? 0 : 4;  // node id (per warp under lockstep)
  if constexpr (kernel_has_uniform_arg<K>)
    if (!lockstep) b += static_cast<std::uint32_t>(sizeof(typename K::UArg));
  if constexpr (kernel_has_lane_arg<K>)
    b += static_cast<std::uint32_t>(sizeof(typename K::LArg));
  return (b + 3u) & ~3u;
}

struct WarpRange {
  std::uint32_t begin = 0, end = 0;  // point ids [begin, end)
};

// ---------------------------------------------------------------------
// Autoropes, non-lockstep (per-lane stacks).
// ---------------------------------------------------------------------
template <TraversalKernel K>
void warp_autoropes_nolockstep(const K& k, const DeviceConfig& cfg,
                               GpuMode mode, WarpMemory& mem,
                               KernelStats& stats, WarpRange range,
                               std::uint64_t stack_base,
                               std::uint32_t entry_bytes, int stack_bound,
                               std::uint32_t* point_visits,
                               typename K::Result* results,
                               std::atomic<bool>& overflow,
                               obs::WarpTracer* tr) {
  const int lanes = static_cast<int>(range.end - range.begin);
  std::vector<std::vector<ChildOf<K>>> stk(lanes);
  std::vector<typename K::State> state;
  state.reserve(lanes);

  for (int l = 0; l < lanes; ++l) {
    state.push_back(k.init(range.begin + l, mem, l));
    stk[l].push_back({k.root(), k.root_uarg(), k.root_larg()});
  }
  mem.commit();  // initial coalesced point loads

  auto stack_addr = [&](int lane, std::size_t level) {
    return stack_base +
           (mode.contiguous_stack
                ? contiguous_stack_offset(level, static_cast<std::uint32_t>(lane),
                                          static_cast<std::uint32_t>(stack_bound + 4),
                                          entry_bytes)
                : interleaved_stack_offset(level,
                                           static_cast<std::uint32_t>(lane),
                                           static_cast<std::uint32_t>(cfg.warp_size),
                                           entry_bytes));
  };

  std::vector<ChildOf<K>> current(lanes);
  std::vector<std::int8_t> popped(lanes);
  ChildOf<K> out[K::kFanout];

  for (;;) {
    int active = 0;
    std::uint32_t pop_mask = 0;
    std::uint32_t pop_depth = 0;  // deepest stack among popping lanes
    for (int l = 0; l < lanes; ++l) {
      popped[l] = !stk[l].empty();
      if (popped[l]) {
        current[l] = stk[l].back();
        stk[l].pop_back();
        mem.lane_load_raw(l, stack_addr(l, stk[l].size()), entry_bytes);
        ++active;
        pop_mask |= 1u << l;
        pop_depth =
            std::max(pop_depth, static_cast<std::uint32_t>(stk[l].size()));
      }
    }
    if (active == 0) break;
    ++stats.warp_steps;
    stats.active_lane_sum += static_cast<std::uint64_t>(active);
    stats.instr_cycles += cfg.c_step;
    mem.commit();  // stack pops
    if (tr)
      // Lanes pop distinct nodes, so the node field is not warp-uniform.
      tr->record(obs::TraceEventKind::kPop, 0xffffffffu, pop_mask, pop_depth);

    std::uint32_t trunc_mask = 0;
    stats.instr_cycles += cfg.c_visit;
    for (int l = 0; l < lanes; ++l) {
      if (!popped[l]) continue;
      ++stats.lane_visits;
      ++point_visits[l];
      bool descend = k.visit(current[l].node, current[l].uarg,
                             current[l].larg, state[l], mem, l);
      if (!descend) {
        popped[l] = 0;
        trunc_mask |= 1u << l;
        continue;
      }
    }
    mem.commit();  // node loads (+ leaf payloads)
    if (tr) {
      tr->record(obs::TraceEventKind::kVisit, 0xffffffffu, pop_mask,
                 pop_depth);
      if (trunc_mask != 0)
        tr->record(obs::TraceEventKind::kTruncate, 0xffffffffu, trunc_mask,
                   pop_depth);
    }

    std::uint32_t push_count = 0;
    std::uint32_t push_mask = 0;
    for (int l = 0; l < lanes; ++l) {
      if (!popped[l]) continue;
      int cs = K::kNumCallSets > 1 ? k.choose_callset(current[l].node, state[l])
                                   : 0;
      int cnt =
          k.children(current[l].node, current[l].uarg, cs, state[l], out, mem, l);
      for (int i = cnt - 1; i >= 0; --i) {
        mem.lane_load_raw(l, stack_addr(l, stk[l].size()), entry_bytes);
        stk[l].push_back(out[i]);
        stats.instr_cycles += cfg.c_smem;
      }
      if (cnt > 0) {
        push_count += static_cast<std::uint32_t>(cnt);
        push_mask |= 1u << l;
      }
      if (stk[l].size() > static_cast<std::size_t>(stack_bound))
        overflow.store(true, std::memory_order_relaxed);
      stats.peak_stack_entries =
          std::max<std::uint64_t>(stats.peak_stack_entries, stk[l].size());
    }
    mem.commit();  // children loads + stack pushes
    if (tr && push_count != 0)
      tr->record(obs::TraceEventKind::kPush, 0xffffffffu, push_mask,
                 pop_depth + 1, push_count);
  }

  for (int l = 0; l < lanes; ++l) results[l] = k.finish(state[l]);
}

// ---------------------------------------------------------------------
// Autoropes, lockstep (per-warp stack + mask, Figure 8).
// ---------------------------------------------------------------------
template <TraversalKernel K>
void warp_autoropes_lockstep(const K& k, const DeviceConfig& cfg,
                             GpuMode mode, WarpMemory& mem,
                             KernelStats& stats, WarpRange range,
                             std::uint64_t stack_base,
                             std::uint32_t lane_entry_bytes, int stack_bound,
                             std::uint32_t* warp_pops,
                             typename K::Result* results,
                             std::atomic<bool>& overflow,
                             obs::WarpTracer* tr) {
  const int lanes = static_cast<int>(range.end - range.begin);
  struct WEntry {
    NodeId node;
    typename K::UArg uarg;
    std::uint32_t mask;
  };
  std::vector<WEntry> stk;
  // Per-lane argument planes, parallel to the warp stack (interleaved in
  // global memory when the kernel has LArgs).
  std::vector<std::vector<typename K::LArg>> largs;

  std::vector<typename K::State> state;
  state.reserve(lanes);
  for (int l = 0; l < lanes; ++l) state.push_back(k.init(range.begin + l, mem, l));
  mem.commit();

  const std::uint32_t full_mask =
      lanes >= 32 ? 0xffffffffu : ((1u << lanes) - 1u);
  stk.push_back({k.root(), k.root_uarg(), full_mask});
  largs.push_back(std::vector<typename K::LArg>(lanes, k.root_larg()));

  auto lane_stack_addr = [&](int lane, std::size_t level) {
    return stack_base +
           (level * static_cast<std::size_t>(cfg.warp_size) + lane) *
               lane_entry_bytes;
  };
  // Ablation: per-warp stack entries in global memory instead of shared.
  // The warp-shared part (node id + mask + uniform arg) is one 12-byte
  // record per level, placed after the per-lane argument planes.
  const std::uint64_t warp_entries_base =
      stack_base + static_cast<std::uint64_t>(stack_bound + 4) *
                       cfg.warp_size * lane_entry_bytes;
  auto warp_stack_op = [&](std::size_t level) {
    if (mode.lockstep_stack_global)
      mem.lane_load_raw(0, warp_entries_base + level * 12, 12);
    else
      stats.instr_cycles += cfg.c_smem;
  };

  ChildOf<K> out[K::kFanout];
  // lane_largs[l][i]: lane l's LArg for child i of the current node.
  std::array<std::array<typename K::LArg, K::kFanout>, 32> lane_largs;
  int callset_votes[8];

  std::uint32_t pops_here = 0;  // this chunk only (stats accumulate chunks)
  while (!stk.empty()) {
    WEntry top = stk.back();
    stk.pop_back();
    std::vector<typename K::LArg> top_largs = std::move(largs.back());
    largs.pop_back();
    ++stats.warp_pops;
    ++pops_here;
    ++stats.warp_steps;
    stats.instr_cycles += cfg.c_step;
    warp_stack_op(stk.size());  // pop the warp-level entry
    if (tr)
      tr->record(obs::TraceEventKind::kPop, top.node, top.mask,
                 static_cast<std::uint32_t>(stk.size()));
    if constexpr (kernel_has_lane_arg<K>) {
      // Per-lane argument planes live in the interleaved global stack; the
      // pop re-reads the level that the matching push wrote.
      for (int l = 0; l < lanes; ++l)
        if (top.mask & (1u << l))
          mem.lane_load_raw(l, lane_stack_addr(l, stk.size()),
                            lane_entry_bytes);
    }

    int active = 0;
    std::uint32_t new_mask = 0;
    stats.instr_cycles += cfg.c_visit;
    for (int l = 0; l < lanes; ++l) {
      if (!(top.mask & (1u << l))) continue;
      ++active;
      ++stats.lane_visits;
      if (k.visit(top.node, top.uarg, top_largs[l], state[l], mem, l))
        new_mask |= 1u << l;
    }
    stats.active_lane_sum += static_cast<std::uint64_t>(active);
    mem.commit();  // broadcast node load coalesces to one transaction
    if (tr) {
      tr->record(obs::TraceEventKind::kVisit, top.node, top.mask,
                 static_cast<std::uint32_t>(stk.size()));
      if ((top.mask & ~new_mask) != 0)
        tr->record(obs::TraceEventKind::kTruncate, top.node,
                   top.mask & ~new_mask,
                   static_cast<std::uint32_t>(stk.size()));
    }

    // Warp vote on whether anyone still descends (warp_and of Figure 8).
    ++stats.votes;
    stats.instr_cycles += cfg.c_vote;
    if (tr)
      tr->record(obs::TraceEventKind::kVote, top.node, new_mask,
                 static_cast<std::uint32_t>(stk.size()), new_mask != 0);
    if (new_mask == 0) continue;

    int cs = 0;
    if constexpr (K::kNumCallSets > 1) {
      // Section 4.3: dynamic single-call-set reduction by majority vote.
      static_assert(K::kCallSetsEquivalent,
                    "lockstep requires semantically-equivalent call sets");
      for (int c = 0; c < K::kNumCallSets; ++c) callset_votes[c] = 0;
      for (int l = 0; l < lanes; ++l)
        if (new_mask & (1u << l))
          ++callset_votes[k.choose_callset(top.node, state[l])];
      for (int c = 1; c < K::kNumCallSets; ++c)
        if (callset_votes[c] > callset_votes[cs]) cs = c;
      ++stats.votes;
      stats.instr_cycles += cfg.c_vote;
      if (tr)
        tr->record(obs::TraceEventKind::kVote, top.node, new_mask,
                   static_cast<std::uint32_t>(stk.size()),
                   static_cast<std::uint32_t>(cs));
    }

    // Child node ids and UArgs are warp-uniform (every lane passes the same
    // voted call set); per-lane LArgs are each lane's own computation.
    int cnt = 0;
    bool have_leader = false;
    for (int l = 0; l < lanes; ++l) {
      if (!(new_mask & (1u << l))) continue;
      if (!have_leader) {
        have_leader = true;
        cnt = k.children(top.node, top.uarg, cs, state[l], out, mem, l);
        if constexpr (kernel_has_lane_arg<K>)
          for (int i = 0; i < cnt; ++i) lane_largs[l][i] = out[i].larg;
      } else if constexpr (kernel_has_lane_arg<K>) {
        NoopMem noop;  // same nodes1 cacheline; the leader recorded the load
        ChildOf<K> mine[K::kFanout];
        k.children(top.node, top.uarg, cs, state[l], mine, noop, l);
        for (int i = 0; i < cnt; ++i) lane_largs[l][i] = mine[i].larg;
      }
    }
    mem.commit();

    // Push in reverse so pops preserve the recursive order (section 3.3).
    for (int i = cnt - 1; i >= 0; --i) {
      warp_stack_op(stk.size());
      std::vector<typename K::LArg> child_largs(lanes);
      if constexpr (kernel_has_lane_arg<K>) {
        for (int l = 0; l < lanes; ++l) {
          if (!(new_mask & (1u << l))) continue;
          child_largs[l] = lane_largs[l][i];
          mem.lane_load_raw(l, lane_stack_addr(l, stk.size()),
                            lane_entry_bytes);
        }
      }
      stk.push_back({out[i].node, out[i].uarg, new_mask});
      largs.push_back(std::move(child_largs));
      if (tr)
        tr->record(obs::TraceEventKind::kPush, out[i].node, new_mask,
                   static_cast<std::uint32_t>(stk.size()));
    }
    mem.commit();  // interleaved per-lane argument stores (coalesced)
    if (stk.size() > static_cast<std::size_t>(stack_bound))
      overflow.store(true, std::memory_order_relaxed);
    stats.peak_stack_entries =
        std::max<std::uint64_t>(stats.peak_stack_entries, stk.size());
  }

  *warp_pops = pops_here;
  for (int l = 0; l < lanes; ++l) results[l] = k.finish(state[l]);
}

// ---------------------------------------------------------------------
// Recursive, non-lockstep: the naive CUDA port. Per-lane call stacks with
// frames spilled to thread-interleaved local memory. Hardware reconverges
// only at call boundaries, so each step executes one divergent call path:
// among the lanes at the deepest live call level, only those sitting on
// the leader's tree node run; lanes on other nodes (and all shallower
// lanes) stall. Similar traversals (sorted inputs) keep the whole warp in
// one group -- naive recursion is then surprisingly competitive, matching
// the paper's negative sorted-N improvements -- while divergent traversals
// serialize lane by lane.
// ---------------------------------------------------------------------
template <TraversalKernel K>
void warp_recursive_nolockstep(const K& k, const DeviceConfig& cfg,
                               WarpMemory& mem, KernelStats& stats,
                               WarpRange range, std::uint64_t frame_base,
                               std::uint32_t* point_visits,
                               typename K::Result* results,
                               obs::WarpTracer* tr) {
  const int lanes = static_cast<int>(range.end - range.begin);
  struct Frame {
    ChildOf<K> self;
    ChildOf<K> kids[K::kFanout];
    int cnt = 0;
    int cursor = 0;
    bool visited = false;
  };
  std::vector<std::vector<Frame>> stk(lanes);
  std::vector<typename K::State> state;
  state.reserve(lanes);
  for (int l = 0; l < lanes; ++l) {
    state.push_back(k.init(range.begin + l, mem, l));
    Frame f;
    f.self = {k.root(), k.root_uarg(), k.root_larg()};
    stk[l].push_back(f);
  }
  mem.commit();

  auto frame_addr = [&](int lane, std::size_t depth) {
    return frame_base +
           (depth * static_cast<std::size_t>(cfg.warp_size) + lane) *
               static_cast<std::uint32_t>(cfg.frame_bytes);
  };

  for (;;) {
    std::size_t max_depth = 0;
    int alive = 0;
    for (int l = 0; l < lanes; ++l) {
      if (stk[l].empty()) continue;
      ++alive;
      max_depth = std::max(max_depth, stk[l].size());
    }
    if (alive == 0) break;

    // The executable group: deepest lanes that share the leader's node.
    NodeId leader_node = kNullNode;
    for (int l = 0; l < lanes; ++l) {
      if (stk[l].empty() || stk[l].size() != max_depth) continue;
      leader_node = stk[l].back().self.node;
      break;
    }

    ++stats.warp_steps;
    stats.instr_cycles += cfg.c_step;
    int active = 0;
    bool any_visit = false, any_call = false;
    std::uint32_t visit_mask = 0, trunc_mask = 0, call_mask = 0, ret_mask = 0;
    for (int l = 0; l < lanes; ++l) {
      if (stk[l].empty() || stk[l].size() != max_depth ||
          stk[l].back().self.node != leader_node)
        continue;
      ++active;
      Frame& f = stk[l].back();
      if (!f.visited) {
        f.visited = true;
        ++stats.lane_visits;
        ++point_visits[l];
        any_visit = true;
        visit_mask |= 1u << l;
        bool descend =
            k.visit(f.self.node, f.self.uarg, f.self.larg, state[l], mem, l);
        if (descend) {
          int cs =
              K::kNumCallSets > 1 ? k.choose_callset(f.self.node, state[l]) : 0;
          f.cnt = k.children(f.self.node, f.self.uarg, cs, state[l], f.kids,
                             mem, l);
        } else {
          f.cnt = 0;
          trunc_mask |= 1u << l;
        }
      } else if (f.cursor < f.cnt) {
        // Call: spill the live frame and descend into the next child.
        any_call = true;
        ++stats.calls;
        call_mask |= 1u << l;
        Frame child;
        child.self = f.kids[f.cursor++];
        mem.lane_load_raw(l, frame_addr(l, stk[l].size() - 1),
                          static_cast<std::uint32_t>(cfg.frame_bytes));
        stk[l].push_back(child);
      } else {
        // Return: restore the caller's frame from local memory.
        any_call = true;
        ret_mask |= 1u << l;
        mem.lane_load_raw(l, frame_addr(l, stk[l].size() >= 2
                                               ? stk[l].size() - 2
                                               : 0),
                          static_cast<std::uint32_t>(cfg.frame_bytes));
        stk[l].pop_back();
      }
      stats.peak_stack_entries =
          std::max<std::uint64_t>(stats.peak_stack_entries, stk[l].size());
    }
    stats.active_lane_sum += static_cast<std::uint64_t>(active);
    if (any_visit) stats.instr_cycles += cfg.c_visit;
    if (any_call) stats.instr_cycles += cfg.c_call;
    mem.commit();
    if (tr) {
      const auto depth = static_cast<std::uint32_t>(max_depth);
      if (visit_mask != 0)
        tr->record(obs::TraceEventKind::kVisit, leader_node, visit_mask,
                   depth);
      if (trunc_mask != 0)
        tr->record(obs::TraceEventKind::kTruncate, leader_node, trunc_mask,
                   depth);
      if (call_mask != 0)
        tr->record(obs::TraceEventKind::kCall, leader_node, call_mask,
                   depth + 1);
      if (ret_mask != 0)
        tr->record(obs::TraceEventKind::kReturn, leader_node, ret_mask,
                   depth - 1);
    }
  }

  for (int l = 0; l < lanes; ++l) results[l] = k.finish(state[l]);
}

// ---------------------------------------------------------------------
// Recursive, lockstep: warp-level recursion over the union traversal with
// explicit masking (footnote 5). Same visit set as lockstep autoropes, but
// every level pays a call/return pair plus per-lane frame traffic.
// ---------------------------------------------------------------------
template <TraversalKernel K>
struct RecLockstepCtx {
  const K& k;
  const DeviceConfig& cfg;
  WarpMemory& mem;
  KernelStats& stats;
  std::vector<typename K::State>& state;
  int lanes;
  std::uint64_t frame_base;
  obs::WarpTracer* tr;
  int callset_votes[8];

  std::uint64_t frame_addr(int lane, std::size_t depth) const {
    return frame_base +
           (depth * static_cast<std::size_t>(cfg.warp_size) + lane) *
               static_cast<std::uint32_t>(cfg.frame_bytes);
  }

  void recurse(NodeId node, typename K::UArg ua,
               const std::vector<typename K::LArg>& la, std::uint32_t mask,
               std::size_t depth) {
    ++stats.warp_pops;
    ++stats.warp_steps;
    stats.instr_cycles += cfg.c_step + cfg.c_visit;
    if (tr)
      tr->record(obs::TraceEventKind::kPop, node, mask,
                 static_cast<std::uint32_t>(depth));

    int active = 0;
    std::uint32_t new_mask = 0;
    for (int l = 0; l < lanes; ++l) {
      if (!(mask & (1u << l))) continue;
      ++active;
      ++stats.lane_visits;
      if (k.visit(node, ua, la[l], state[l], mem, l)) new_mask |= 1u << l;
    }
    stats.active_lane_sum += static_cast<std::uint64_t>(active);
    mem.commit();
    ++stats.votes;
    stats.instr_cycles += cfg.c_vote;
    if (tr) {
      tr->record(obs::TraceEventKind::kVisit, node, mask,
                 static_cast<std::uint32_t>(depth));
      if ((mask & ~new_mask) != 0)
        tr->record(obs::TraceEventKind::kTruncate, node, mask & ~new_mask,
                   static_cast<std::uint32_t>(depth));
      tr->record(obs::TraceEventKind::kVote, node, new_mask,
                 static_cast<std::uint32_t>(depth), new_mask != 0);
    }
    if (new_mask == 0) return;

    int cs = 0;
    if constexpr (K::kNumCallSets > 1) {
      static_assert(K::kCallSetsEquivalent,
                    "lockstep requires semantically-equivalent call sets");
      for (int c = 0; c < K::kNumCallSets; ++c) callset_votes[c] = 0;
      for (int l = 0; l < lanes; ++l)
        if (new_mask & (1u << l))
          ++callset_votes[k.choose_callset(node, state[l])];
      for (int c = 1; c < K::kNumCallSets; ++c)
        if (callset_votes[c] > callset_votes[cs]) cs = c;
      ++stats.votes;
      stats.instr_cycles += cfg.c_vote;
      if (tr)
        tr->record(obs::TraceEventKind::kVote, node, new_mask,
                   static_cast<std::uint32_t>(depth),
                   static_cast<std::uint32_t>(cs));
    }

    ChildOf<K> out[K::kFanout];
    std::array<std::array<typename K::LArg, K::kFanout>, 32> lane_largs;
    int cnt = 0;
    bool have_leader = false;
    for (int l = 0; l < lanes; ++l) {
      if (!(new_mask & (1u << l))) continue;
      if (!have_leader) {
        have_leader = true;
        cnt = k.children(node, ua, cs, state[l], out, mem, l);
        if constexpr (kernel_has_lane_arg<K>)
          for (int i = 0; i < cnt; ++i) lane_largs[l][i] = out[i].larg;
      } else if constexpr (kernel_has_lane_arg<K>) {
        NoopMem noop;
        ChildOf<K> mine[K::kFanout];
        k.children(node, ua, cs, state[l], mine, noop, l);
        for (int i = 0; i < cnt; ++i) lane_largs[l][i] = mine[i].larg;
      }
    }
    mem.commit();

    std::vector<typename K::LArg> child_la(static_cast<std::size_t>(lanes));
    for (int i = 0; i < cnt; ++i) {
      // Call: every masked lane spills its frame to local memory.
      ++stats.calls;
      stats.instr_cycles += cfg.c_call;
      for (int l = 0; l < lanes; ++l) {
        if (!(new_mask & (1u << l))) continue;
        mem.lane_load_raw(l, frame_addr(l, depth),
                          static_cast<std::uint32_t>(cfg.frame_bytes));
        if constexpr (kernel_has_lane_arg<K>) child_la[l] = lane_largs[l][i];
      }
      mem.commit();
      if (tr)
        tr->record(obs::TraceEventKind::kCall, out[i].node, new_mask,
                   static_cast<std::uint32_t>(depth + 1));
      recurse(out[i].node, out[i].uarg, child_la, new_mask, depth + 1);
      // Return: restore the frame.
      for (int l = 0; l < lanes; ++l)
        if (new_mask & (1u << l))
          mem.lane_load_raw(l, frame_addr(l, depth),
                            static_cast<std::uint32_t>(cfg.frame_bytes));
      mem.commit();
      if (tr)
        tr->record(obs::TraceEventKind::kReturn, node, new_mask,
                   static_cast<std::uint32_t>(depth));
    }
  }
};

template <TraversalKernel K>
void warp_recursive_lockstep(const K& k, const DeviceConfig& cfg,
                             WarpMemory& mem, KernelStats& stats,
                             WarpRange range, std::uint64_t frame_base,
                             std::uint32_t* warp_pops,
                             typename K::Result* results,
                             obs::WarpTracer* tr) {
  const int lanes = static_cast<int>(range.end - range.begin);
  std::vector<typename K::State> state;
  state.reserve(lanes);
  for (int l = 0; l < lanes; ++l) state.push_back(k.init(range.begin + l, mem, l));
  mem.commit();

  RecLockstepCtx<K> ctx{k, cfg, mem, stats, state, lanes, frame_base, tr, {}};
  const std::uint32_t full_mask =
      lanes >= 32 ? 0xffffffffu : ((1u << lanes) - 1u);
  std::vector<typename K::LArg> root_la(static_cast<std::size_t>(lanes),
                                        k.root_larg());
  std::uint64_t pops_before = stats.warp_pops;
  ctx.recurse(k.root(), k.root_uarg(), root_la, full_mask, 0);

  *warp_pops = static_cast<std::uint32_t>(stats.warp_pops - pops_before);
  for (int l = 0; l < lanes; ++l) results[l] = k.finish(state[l]);
}

}  // namespace detail

// ---------------------------------------------------------------------
// Entry point: simulate the kernel under one of the four GPU variants.
// `trace` is optional: when non-null, every warp loop emits per-step
// event records into it (see obs/trace.h for the determinism contract).
// ---------------------------------------------------------------------
template <TraversalKernel K>
GpuRun<K> run_gpu_sim(const K& k, GpuAddressSpace& space,
                      const DeviceConfig& cfg, GpuMode mode,
                      obs::TraceSink* trace = nullptr) {
  const std::size_t n = k.num_points();
  const std::size_t n_warps =
      (n + static_cast<std::size_t>(cfg.warp_size) - 1) /
      static_cast<std::size_t>(cfg.warp_size);
  GpuRun<K> run;
  run.n_warps = n_warps;
  run.results.resize(n);
  if (mode.lockstep)
    run.per_warp_pops.assign(n_warps, 0);
  else
    run.per_point_visits.assign(n, 0);

  const int stack_bound = k.stack_bound();
  const std::uint32_t entry_bytes =
      std::max<std::uint32_t>(4, detail::stack_entry_bytes<K>(mode.lockstep));
  // One interleaved stack (or local-memory frame arena) region per warp,
  // plus room for the warp-level entries of the global-lockstep ablation.
  const std::uint64_t per_warp_span =
      static_cast<std::uint64_t>(stack_bound + 4) *
      (static_cast<std::uint64_t>(cfg.warp_size) *
           std::max<std::uint32_t>(entry_bytes,
                                   static_cast<std::uint32_t>(cfg.frame_bytes)) +
       12);
  BufferId stack_buf = space.ensure_buffer(
      mode.autoropes ? "rope_stack" : "local_frames", 1,
      per_warp_span * n_warps);
  const std::uint64_t stack_base0 = space.addr(stack_buf, 0);

  // Figure 9b's strip-mined grid loop: with a finite grid, physical warp p
  // processes chunks p, p + grid, p + 2*grid, ... and keeps its L2 slice
  // (and stack arena) across chunks.
  const std::size_t grid =
      mode.grid_limit > 0 ? std::min(mode.grid_limit, n_warps) : n_warps;

  std::atomic<bool> overflow{false};
  if (trace) trace->begin(n_warps, omp_get_max_threads());
  WallTimer timer;
  std::vector<KernelStats> per_warp = run_warps(
      grid, cfg, [&](std::size_t p, KernelStats& stats, L2Cache* l2) {
        WarpMemory mem(space, cfg, l2, stats);
        std::uint64_t base = stack_base0 + per_warp_span * p;
        obs::WarpTracer* tr =
            trace ? &trace->ring(omp_get_thread_num()) : nullptr;
        for (std::size_t w = p; w < n_warps; w += grid) {
          if (tr) tr->begin_warp(static_cast<std::uint32_t>(w));
          detail::WarpRange range;
          range.begin = static_cast<std::uint32_t>(w * cfg.warp_size);
          range.end = static_cast<std::uint32_t>(
              std::min<std::size_t>(n, (w + 1) * cfg.warp_size));
          auto* results = run.results.data() + range.begin;
          if (mode.autoropes && !mode.lockstep) {
            detail::warp_autoropes_nolockstep(
                k, cfg, mode, mem, stats, range, base, entry_bytes,
                stack_bound, run.per_point_visits.data() + range.begin,
                results, overflow, tr);
          } else if (mode.autoropes && mode.lockstep) {
            detail::warp_autoropes_lockstep(
                k, cfg, mode, mem, stats, range, base, entry_bytes,
                stack_bound, &run.per_warp_pops[w], results, overflow, tr);
          } else if (!mode.autoropes && !mode.lockstep) {
            detail::warp_recursive_nolockstep(
                k, cfg, mem, stats, range, base,
                run.per_point_visits.data() + range.begin, results, tr);
          } else {
            detail::warp_recursive_lockstep(k, cfg, mem, stats, range, base,
                                            &run.per_warp_pops[w], results,
                                            tr);
          }
          if (tr) trace->commit(static_cast<std::uint32_t>(w), *tr);
        }
      });
  run.sim_wall_ms = timer.elapsed_ms();
  if (overflow.load())
    throw std::runtime_error("run_gpu_sim: rope stack overflow (stack_bound " +
                             std::to_string(stack_bound) + ")");
  run.stats = merge_stats(per_warp);
  run.time = estimate_time_balanced(instr_cycles_of(per_warp), run.stats, cfg);
  return run;
}

}  // namespace tt
