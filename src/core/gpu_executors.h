// GPU-simulated executors: the paper's four fixed variants, each a
// declarative StackPolicy x ConvergencePolicy composition driven by the
// shared WarpEngine core, plus the section-4.4 adaptive variant that
// picks between the two autoropes compositions at launch time:
//
//   variant          stack policy    convergence policy
//   ---------------  --------------  ---------------------------
//   auto_nolockstep  LaneRopeStack   LoopHeadReconvergence
//   auto_lockstep    WarpStack       WarpAndTruncation
//   rec_nolockstep   CallFrames      MaxDepthCallReconvergence
//   rec_lockstep     CallFrames      WarpAndTruncation
//   auto_select      (sample similarity, dispatch to auto_lockstep or
//                     auto_nolockstep; sampling charged to the cost model)
//   stackless_lockstep    StacklessRope  WarpAndTruncation (shared cursor)
//   stackless_nolockstep  StacklessRope  LoopHeadReconvergence
//   index_walk            IndexWalk      LoopHeadReconvergence
//
// The stackless three need a StacklessCompatibleKernel (static_ropes.h)
// and allocate no stack arena; the freed shared memory backs a modelled
// top-of-tree node cache (simt/smem_cache.h).
//
// The WarpEngine (warp_engine.h) owns the per-warp lifecycle, counters and
// the single trace-emission site; stack policies (stack_policy.h) own
// continuation layout and traffic; convergence policies
// (convergence_policy.h) own the warp schedule. The launch math -- arena
// sizing, Figure 9b grid, the composition table and the per-slot chunk
// loop -- lives in core/launch.h (run_chunk / run_warp_slot), shared with
// the batched executor (batch_scheduler.h); run_gpu_sim below resolves
// auto_select, allocates the run's storage and fans slots out.
//
// All variants execute the *same kernel semantics*; only event counts (and
// therefore modelled time) differ. Equivalence across variants is enforced
// by integration tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/convergence_policy.h"
#include "core/launch.h"
#include "core/profiler.h"
#include "core/stack_policy.h"
#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "core/variant.h"
#include "core/warp_engine.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "simt/address_space.h"
#include "simt/cost_model.h"
#include "simt/device_config.h"
#include "simt/executor.h"
#include "simt/kernel_stats.h"
#include "simt/warp_memory.h"
#include "util/timer.h"

namespace tt {

template <class K>
struct GpuRun {
  std::vector<typename K::Result> results;
  KernelStats stats;
  TimeBreakdown time;
  std::size_t n_warps = 0;
  // Non-lockstep: per-point node visits. Lockstep: per-warp pop counts
  // (every point of the warp shares the warp's union traversal). Table 2's
  // work-expansion metric combines the two.
  std::vector<std::uint32_t> per_point_visits;
  std::vector<std::uint32_t> per_warp_pops;
  double sim_wall_ms = 0;  // host cost of the simulation (diagnostic)
  // Set only by the auto_select variant: what the section-4.4 sampler
  // measured and which composition the launch was dispatched to.
  std::optional<SelectionInfo> selection;
  // Set when a ProfileSink was passed: the launch's cycle-attribution
  // profile (obs/profile.h), with any auto_select sampling charge folded
  // into the kSelect bucket so reconciles() covers the full launch.
  std::optional<obs::ProfileReport> profile;

  // The paper's "Avg. # Nodes" column.
  [[nodiscard]] double avg_nodes() const {
    if (!per_warp_pops.empty()) {
      double s = 0;
      for (auto v : per_warp_pops) s += v;
      return s / static_cast<double>(per_warp_pops.size());
    }
    double s = 0;
    for (auto v : per_point_visits) s += v;
    return per_point_visits.empty() ? 0 : s / static_cast<double>(per_point_visits.size());
  }
};

// ---------------------------------------------------------------------
// Entry point: simulate the kernel under one of the four GPU variants.
// `trace` is optional: when non-null, the engine emits per-step event
// records into it (see obs/trace.h for the determinism contract).
// `profile` is optional: when non-null, the run's cycle-attribution
// profile (obs/profile.h) is built into GpuRun::profile.
// ---------------------------------------------------------------------
template <TraversalKernel K>
GpuRun<K> run_gpu_sim(const K& k, GpuAddressSpace& space,
                      const DeviceConfig& cfg, GpuMode mode,
                      obs::TraceSink* trace = nullptr,
                      obs::ProfileSink* profile = nullptr) {
  if (mode.variant() == Variant::kAutoSelect) {
    // Section 4.4 adaptive selection: sample a few adjacent traversal
    // pairs, then dispatch this launch to the lockstep (similar => input
    // effectively sorted) or non-lockstep autoropes composition. The
    // sampled traversals run serially before the kernel on one SM, so
    // their cost is charged to compute time without overlap.
    if (mode.profile_samples == 0)
      throw std::invalid_argument(
          "run_gpu_sim: auto_select needs profile_samples >= 1");
    const ProfileReport p =
        profile_similarity(k, mode.profile_samples, mode.profile_seed);
    const double sampling_cycles =
        static_cast<double>(p.sampled_visits) * (cfg.c_visit + cfg.c_step);
    GpuMode chosen = mode;
    chosen.auto_select = false;
    chosen.autoropes = true;
    chosen.lockstep = p.looks_sorted;
    GpuRun<K> run = run_gpu_sim(k, space, cfg, chosen, trace, profile);
    SelectionInfo sel;
    sel.mean_similarity = p.mean_similarity;
    sel.baseline_similarity = p.baseline_similarity;
    sel.samples = p.samples;
    sel.threshold = p.threshold;
    sel.chosen = chosen.variant();
    sel.sampling_cycles = sampling_cycles;
    run.selection = sel;
    run.stats.note_sampling_cycles(sampling_cycles);
    // The dispatched run built its profile before the sampling charge;
    // refresh the bucket split so reconciles() covers the full launch.
    if (run.profile) {
      run.profile->buckets = run.stats.cycle_buckets;
      run.profile->instr_cycles = run.stats.instr_cycles;
    }
    const double cycles_per_ms = cfg.clock_ghz * 1e6;
    run.time.compute_ms += sampling_cycles / cycles_per_ms;
    run.time.total_ms = std::max(run.time.compute_ms, run.time.memory_ms);
    run.time.memory_bound = run.time.memory_ms > run.time.compute_ms;
    // Record after the dispatched run so its trace->begin() cannot clear
    // the launch-scope decision event.
    if (trace)
      trace->record_launch(obs::TraceEventKind::kSelect, 0xffffffffu,
                           static_cast<std::uint32_t>(p.samples), 0,
                           p.looks_sorted ? 1u : 0u);
    return run;
  }
  const LaunchGeometry shape = launch_geometry(k, cfg, mode);
  GpuRun<K> run;
  run.n_warps = shape.n_warps;
  run.results.resize(shape.n);
  if (mode.lockstep)
    run.per_warp_pops.assign(shape.n_warps, 0);
  else
    run.per_point_visits.assign(shape.n, 0);

  // Stackless family: no arena; instead the launch registers the rope
  // array (scratch, like the arena) and builds the shared-memory node
  // cache from the bytes the per-warp stack records used to occupy. Both
  // happen here, serially, before slots fan out.
  std::uint64_t stack_base0 = 0;
  StacklessCtx sctx;
  SmemNodeCache cache;
  if (mode.stackless) {
    // One canonical ineligibility spelling shared with the launch API and
    // the harness's "skipped:" rows (core/static_ropes.h).
    const std::string why =
        kernel_variant_ineligible_reason(k, mode.variant());
    if (!why.empty())
      throw std::invalid_argument("run_gpu_sim: " + why);
    if constexpr (StacklessCompatibleKernel<K>) {
      sctx.rope_buf = space.ensure_buffer(
          "ropes", 4, static_cast<std::uint64_t>(k.ropes().rope.size()));
      if (mode.smem_node_cache) {
        cache = SmemNodeCache::build(space, k.node_buffers(),
                                     k.ropes().rope.size(),
                                     stackless_cache_bytes(cfg, shape, mode));
        sctx.cache = &cache;
      }
    }
  } else {
    BufferId stack_buf = ensure_stack_arena(space, mode, shape);
    stack_base0 = space.addr(stack_buf, 0);
  }

  OverflowReport overflow;
  if (trace) trace->begin(shape.n_warps, omp_get_max_threads());
  if (profile) profile->begin(omp_get_max_threads());
  WallTimer timer;
  // One task per physical warp slot; run_warp_slot (core/launch.h) walks
  // the slot's chunks through the composition table. The batch scheduler
  // drives the identical slot body, which is what keeps a batched
  // launch's numbers byte-identical to this solo path.
  std::vector<KernelStats> per_warp = run_warps(
      shape.grid, cfg, [&](std::size_t p, KernelStats& stats, L2Cache* l2) {
        run_warp_slot(k, space, cfg, mode, shape, stack_base0, p, stats, l2,
                      trace, profile, overflow, run.results.data(),
                      mode.lockstep ? nullptr : run.per_point_visits.data(),
                      mode.lockstep ? run.per_warp_pops.data() : nullptr,
                      kSoloKernel, mode.stackless ? &sctx : nullptr);
      });
  run.sim_wall_ms = timer.elapsed_ms();
  if (overflow.overflowed())
    throw std::runtime_error(
        std::string("run_gpu_sim: rope stack overflow (kernel ") +
        kernel_display_name<K>() + ", variant " + variant_name(mode.variant()) +
        ", warp " + std::to_string(overflow.warp()) + ", " +
        std::to_string(overflow.entries()) + " entries, stack_bound " +
        std::to_string(shape.stack_bound) + ")");
  run.stats = merge_stats(per_warp);
  run.time = estimate_time_balanced(instr_cycles_of(per_warp), run.stats, cfg);
  if (profile) {
    const obs::ProfileCollector merged = profile->merged();
    run.profile = obs::make_profile_report(run.stats, cfg, &merged);
  }
  return run;
}

}  // namespace tt
