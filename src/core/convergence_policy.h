// ConvergencePolicy layer: the warp schedule of each execution variant --
// which lanes execute each step, and where control reconverges.
//
//   LoopHeadReconvergence      -- per-lane traversal; control re-converges
//     at the loop head every iteration, but once lanes' traversals diverge
//     their node loads stop coalescing (paper section 4.1).
//   WarpAndTruncation          -- lockstep union traversal (section 4):
//     the warp walks the union of its lanes' traversals behind a lane
//     mask; a warp-wide AND decides truncation, and guided kernels
//     annotated kCallSetsEquivalent use the section-4.3 majority vote.
//     Composes with either a WarpStack (autoropes, Figure 8) or spilled
//     CallFrames (recursion over the union, footnote 5).
//   MaxDepthCallReconvergence  -- the naive CUDA port: per-lane recursion
//     where hardware reconverges only at call boundaries, modelled by the
//     max-depth rule -- each step, only the lanes at the current deepest
//     call level that share the leader's node execute.
//
// Both reconvergence schedules also compose with the stackless policies
// (StacklessRope / IndexWalk, stack_policy.h): the per-lane schedule walks
// each lane's own rope cursor, the lockstep schedule shares one cursor
// with per-lane resume points -- no stack state in either case, so the
// profiler's `stack` bucket is exactly zero for the stackless variants.
//
// Policies drive the traversal through WarpEngine services only: stack
// policies (stack_policy.h) account for continuation traffic, the engine
// owns counters and the single trace-emission site. All variants execute
// the *same kernel semantics*; only event counts (and therefore modelled
// time) differ -- enforced by the cross-variant equivalence tests.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/stack_policy.h"
#include "core/warp_engine.h"

namespace tt {

namespace detail {

// Per-lane stackless rope walk shared by the StacklessRope / IndexWalk
// compositions of LoopHeadReconvergence: each lane follows its own DFS
// cursor (descend == cur + 1 under the left-biased layout, truncate ==
// the policy's escape), so its visit sequence is exactly the per-lane
// rope-stack traversal's -- byte-identical results by construction. No
// stack exists, so nothing ever charges the `stack` bucket and overflow
// is impossible.
template <TraversalKernel K, class SP>
void run_lane_ropewalk(WarpEngine<K>& eng, const SP& sp) {
  const K& k = eng.kernel();
  const int lanes = eng.lanes();
  typename K::LArg no_larg{};

  std::vector<NodeId> cur(static_cast<std::size_t>(lanes), k.root());
  for (;;) {
    int active = 0;
    std::uint32_t act_mask = 0;
    for (int l = 0; l < lanes; ++l) {
      if (cur[static_cast<std::size_t>(l)] == StaticRopes::kEndOfTraversal)
        continue;
      ++active;
      act_mask |= 1u << l;
    }
    if (active == 0) break;
    eng.stats().note_warp_step(eng.cfg().c_step);
    eng.stats().note_visit_cycles(eng.cfg().c_visit);
    eng.stats().note_active_lanes(active);
    eng.profile_step(0, active);

    std::uint32_t trunc_mask = 0;
    for (int l = 0; l < lanes; ++l) {
      NodeId& c = cur[static_cast<std::size_t>(l)];
      if (c == StaticRopes::kEndOfTraversal) continue;
      eng.count_point_visit(l);
      bool descend = k.visit(c, k.uarg_at(c), no_larg, eng.state(l),
                             eng.mem(), l);
      if (descend) {
        c = c + 1;
      } else {
        trunc_mask |= 1u << l;
        sp.record_escape(eng, l, c);
        c = sp.escape(c);
      }
    }
    eng.mem().commit();  // node loads + per-lane rope loads
    // Lanes sit on distinct nodes, so the node field is not warp-uniform.
    eng.emit(obs::TraceEventKind::kVisit, 0xffffffffu, act_mask, 0);
    if (trunc_mask != 0)
      eng.emit(obs::TraceEventKind::kTruncate, 0xffffffffu, trunc_mask, 0);
  }
}

}  // namespace detail

// ---------------------------------------------------------------------
// Per-lane iterative traversal over per-lane rope stacks (Figure 6/7).
// ---------------------------------------------------------------------
struct LoopHeadReconvergence {
  template <TraversalKernel K>
  void run(WarpEngine<K>& eng, const LaneRopeStack& sp) const {
    using ChildT = typename WarpEngine<K>::ChildT;
    const K& k = eng.kernel();
    const int lanes = eng.lanes();

    std::vector<std::vector<ChildT>> stk(static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l)
      stk[static_cast<std::size_t>(l)].push_back(
          {k.root(), k.root_uarg(), k.root_larg()});

    std::vector<ChildT> current(static_cast<std::size_t>(lanes));
    std::vector<std::int8_t> popped(static_cast<std::size_t>(lanes));
    ChildT out[K::kFanout];

    for (;;) {
      int active = 0;
      std::uint32_t pop_mask = 0;
      std::uint32_t pop_depth = 0;  // deepest stack among popping lanes
      for (int l = 0; l < lanes; ++l) {
        auto& s = stk[static_cast<std::size_t>(l)];
        popped[static_cast<std::size_t>(l)] = !s.empty();
        if (popped[static_cast<std::size_t>(l)]) {
          current[static_cast<std::size_t>(l)] = s.back();
          s.pop_back();
          sp.record_pop(eng, l, s.size());
          ++active;
          pop_mask |= 1u << l;
          pop_depth = std::max(pop_depth, static_cast<std::uint32_t>(s.size()));
        }
      }
      if (active == 0) break;
      eng.stats().note_warp_step(eng.cfg().c_step);
      eng.stats().note_active_lanes(active);
      eng.profile_step(pop_depth, active);
      eng.mem().commit();  // stack pops
      // Lanes pop distinct nodes, so the node field is not warp-uniform.
      eng.emit(obs::TraceEventKind::kPop, 0xffffffffu, pop_mask, pop_depth);

      std::uint32_t trunc_mask = 0;
      eng.stats().note_visit_cycles(eng.cfg().c_visit);
      for (int l = 0; l < lanes; ++l) {
        if (!popped[static_cast<std::size_t>(l)]) continue;
        eng.count_point_visit(l);
        const ChildT& cur = current[static_cast<std::size_t>(l)];
        bool descend =
            k.visit(cur.node, cur.uarg, cur.larg, eng.state(l), eng.mem(), l);
        if (!descend) {
          popped[static_cast<std::size_t>(l)] = 0;
          trunc_mask |= 1u << l;
          continue;
        }
      }
      eng.mem().commit();  // node loads (+ leaf payloads)
      eng.emit(obs::TraceEventKind::kVisit, 0xffffffffu, pop_mask, pop_depth);
      if (trunc_mask != 0)
        eng.emit(obs::TraceEventKind::kTruncate, 0xffffffffu, trunc_mask,
                 pop_depth);

      std::uint32_t push_count = 0;
      std::uint32_t push_mask = 0;
      for (int l = 0; l < lanes; ++l) {
        if (!popped[static_cast<std::size_t>(l)]) continue;
        auto& s = stk[static_cast<std::size_t>(l)];
        const ChildT& cur = current[static_cast<std::size_t>(l)];
        int cs = K::kNumCallSets > 1 ? k.choose_callset(cur.node, eng.state(l))
                                     : 0;
        int cnt = k.children(cur.node, cur.uarg, cs, eng.state(l), out,
                             eng.mem(), l);
        for (int i = cnt - 1; i >= 0; --i) {
          sp.record_push(eng, l, s.size());
          s.push_back(out[i]);
        }
        if (cnt > 0) {
          push_count += static_cast<std::uint32_t>(cnt);
          push_mask |= 1u << l;
        }
        eng.check_rope_depth(s.size());
      }
      eng.mem().commit();  // children loads + stack pushes
      if (push_count != 0)
        eng.emit(obs::TraceEventKind::kPush, 0xffffffffu, push_mask,
                 pop_depth + 1, push_count);
    }
  }

  // Stackless flavors: the same per-lane schedule with no stack at all --
  // truncation follows the escape-index rope (one global rope load) or
  // the Wald-style index arithmetic (no memory traffic either).
  template <StacklessCompatibleKernel K>
  void run(WarpEngine<K>& eng, const StacklessRope& sp) const {
    detail::run_lane_ropewalk(eng, sp);
  }
  template <StacklessCompatibleKernel K>
  void run(WarpEngine<K>& eng, const IndexWalk& sp) const {
    detail::run_lane_ropewalk(eng, sp);
  }
};

// ---------------------------------------------------------------------
// Lockstep union traversal with warp-wide AND truncation (section 4).
// ---------------------------------------------------------------------
struct WarpAndTruncation {
  // Autoropes flavor: one masked rope stack per warp (Figure 8). The
  // warp-shared record moves through the WarpStack policy; per-lane LArg
  // planes ride the interleaved global stack.
  template <TraversalKernel K>
  void run(WarpEngine<K>& eng, const WarpStack& sp) const {
    using ChildT = typename WarpEngine<K>::ChildT;
    using LArg = typename K::LArg;
    const K& k = eng.kernel();
    const int lanes = eng.lanes();

    struct WEntry {
      NodeId node;
      typename K::UArg uarg;
      std::uint32_t mask;
    };
    std::vector<WEntry> stk;
    // Per-lane argument planes, parallel to the warp stack (interleaved in
    // global memory when the kernel has LArgs).
    std::vector<std::vector<LArg>> largs;

    stk.push_back({k.root(), k.root_uarg(), eng.full_mask()});
    largs.push_back(
        std::vector<LArg>(static_cast<std::size_t>(lanes), k.root_larg()));

    ChildT out[K::kFanout];
    typename WarpEngine<K>::LaneLArgs lane_largs;

    while (!stk.empty()) {
      WEntry top = stk.back();
      stk.pop_back();
      std::vector<LArg> top_largs = std::move(largs.back());
      largs.pop_back();
      eng.count_warp_pop();
      eng.stats().note_warp_step(eng.cfg().c_step);
      sp.record_warp_op(eng, stk.size());  // pop the warp-level entry
      eng.emit(obs::TraceEventKind::kPop, top.node, top.mask,
               static_cast<std::uint32_t>(stk.size()));
      if constexpr (kernel_has_lane_arg<K>) {
        // The pop re-reads the plane level the matching push wrote.
        for (int l = 0; l < lanes; ++l)
          if (top.mask & (1u << l)) sp.record_lane_plane(eng, l, stk.size());
      }

      std::uint32_t new_mask = eng.union_visit_and_vote(
          top.node, top.uarg, top_largs, top.mask,
          static_cast<std::uint32_t>(stk.size()));
      if (new_mask == 0) continue;

      int cs = eng.vote_callset(top.node, new_mask,
                                static_cast<std::uint32_t>(stk.size()));
      int cnt =
          eng.union_children(top.node, top.uarg, cs, new_mask, out, lane_largs);

      // Push in reverse so pops preserve the recursive order (section 3.3).
      for (int i = cnt - 1; i >= 0; --i) {
        sp.record_warp_op(eng, stk.size());
        std::vector<LArg> child_largs(static_cast<std::size_t>(lanes));
        if constexpr (kernel_has_lane_arg<K>) {
          for (int l = 0; l < lanes; ++l) {
            if (!(new_mask & (1u << l))) continue;
            child_largs[static_cast<std::size_t>(l)] =
                lane_largs[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
            sp.record_lane_plane(eng, l, stk.size());
          }
        }
        stk.push_back({out[i].node, out[i].uarg, new_mask});
        largs.push_back(std::move(child_largs));
        eng.emit(obs::TraceEventKind::kPush, out[i].node, new_mask,
                 static_cast<std::uint32_t>(stk.size()));
      }
      eng.mem().commit();  // interleaved per-lane argument stores (coalesced)
      eng.check_rope_depth(stk.size());
    }
  }

  // Recursive flavor (footnote 5): the warp recurses over the union
  // traversal with explicit masking. Same visit set as the autoropes
  // flavor, but every level pays a call/return pair plus per-lane frame
  // traffic through the CallFrames policy. The recursion is driven by an
  // explicit frame stack so the engine loop stays iterative.
  template <TraversalKernel K>
  void run(WarpEngine<K>& eng, const CallFrames& sp) const {
    using ChildT = typename WarpEngine<K>::ChildT;
    using LArg = typename K::LArg;
    const K& k = eng.kernel();
    const int lanes = eng.lanes();

    struct Frame {
      NodeId node = kNullNode;
      typename K::UArg uarg{};
      std::uint32_t mask = 0;       // lanes participating in this call
      std::vector<LArg> largs;      // per-lane args of this call
      std::uint32_t new_mask = 0;   // survivors after the visit vote
      std::array<ChildT, K::kFanout> kids{};
      typename WarpEngine<K>::LaneLArgs kid_largs{};
      int cnt = 0;
      int cursor = 0;
      bool visited = false;
    };

    std::vector<Frame> stk;
    {
      Frame root;
      root.node = k.root();
      root.uarg = k.root_uarg();
      root.mask = eng.full_mask();
      root.largs.assign(static_cast<std::size_t>(lanes), k.root_larg());
      stk.push_back(std::move(root));
    }

    while (!stk.empty()) {
      Frame& f = stk.back();
      const auto depth = static_cast<std::uint32_t>(stk.size() - 1);
      if (!f.visited) {
        f.visited = true;
        eng.count_warp_pop();
        eng.stats().note_warp_step(eng.cfg().c_step);
        eng.emit(obs::TraceEventKind::kPop, f.node, f.mask, depth);
        f.new_mask =
            eng.union_visit_and_vote(f.node, f.uarg, f.largs, f.mask, depth);
        if (f.new_mask != 0) {
          int cs = eng.vote_callset(f.node, f.new_mask, depth);
          f.cnt = eng.union_children(f.node, f.uarg, cs, f.new_mask,
                                     f.kids.data(), f.kid_largs);
        }
        continue;
      }
      if (f.cursor < f.cnt) {
        const int i = f.cursor++;
        // Call: every masked lane spills its frame to local memory.
        eng.stats().note_call(eng.cfg().c_call);
        Frame child;
        child.node = f.kids[static_cast<std::size_t>(i)].node;
        child.uarg = f.kids[static_cast<std::size_t>(i)].uarg;
        child.mask = f.new_mask;
        child.largs.resize(static_cast<std::size_t>(lanes));
        for (int l = 0; l < lanes; ++l) {
          if (!(f.new_mask & (1u << l))) continue;
          sp.record_frame(eng, l, depth);
          if constexpr (kernel_has_lane_arg<K>)
            child.largs[static_cast<std::size_t>(l)] =
                f.kid_largs[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
        }
        eng.mem().commit();
        eng.emit(obs::TraceEventKind::kCall, child.node, f.new_mask,
                 depth + 1);
        stk.push_back(std::move(child));  // invalidates f; loop re-derives
        continue;
      }
      // All children done: return -- restore the caller's frame.
      stk.pop_back();
      if (!stk.empty()) {
        Frame& p = stk.back();
        const auto pdepth = static_cast<std::uint32_t>(stk.size() - 1);
        for (int l = 0; l < lanes; ++l)
          if (p.new_mask & (1u << l)) sp.record_frame(eng, l, pdepth);
        eng.mem().commit();
        eng.emit(obs::TraceEventKind::kReturn, p.node, p.new_mask, pdepth);
      }
    }
  }

  // Stackless flavor: the warp walks the union traversal behind a shared
  // rope cursor instead of a per-warp stack (the ropes_executor lockstep
  // rule as a composition). A lane that truncates at node n records
  // resume_at = rope[n] and stays masked until the cursor reaches it --
  // exact because DFS ids only move forward. Each lane therefore visits
  // exactly its own traversal set, byte-identical to the stack-based
  // union traversal, while no stack bytes exist and nothing charges the
  // `stack` bucket.
  template <StacklessCompatibleKernel K>
  void run(WarpEngine<K>& eng, const StacklessRope& sp) const {
    using LArg = typename K::LArg;
    const K& k = eng.kernel();
    const int lanes = eng.lanes();
    const std::vector<LArg> no_largs(static_cast<std::size_t>(lanes));

    // resume_at semantics: kNullNode = active; kNeverResume = the lane's
    // traversal ended (its truncation rope pointed past the tree);
    // otherwise the DFS id at which the lane unmasks.
    constexpr NodeId kNeverResume = std::numeric_limits<NodeId>::max();
    std::vector<NodeId> resume_at(static_cast<std::size_t>(lanes), kNullNode);

    NodeId cur = k.root();
    while (cur != StaticRopes::kEndOfTraversal) {
      std::uint32_t mask = 0;
      for (int l = 0; l < lanes; ++l) {
        NodeId& r = resume_at[static_cast<std::size_t>(l)];
        if (r != kNullNode && cur < r) continue;
        r = kNullNode;
        mask |= 1u << l;
      }
      eng.count_warp_pop();
      eng.stats().note_warp_step(eng.cfg().c_step);
      eng.emit(obs::TraceEventKind::kPop, cur, mask, 0);

      // Visit + warp-wide AND truncation vote (charges c_visit, per-lane
      // visits, active lanes, the vote, and emits kVisit / kTruncate).
      std::uint32_t new_mask =
          eng.union_visit_and_vote(cur, k.uarg_at(cur), no_largs, mask, 0);
      for (int l = 0; l < lanes; ++l) {
        if (!(mask & (1u << l)) || (new_mask & (1u << l))) continue;
        NodeId rope = sp.escape(cur);
        resume_at[static_cast<std::size_t>(l)] =
            rope == StaticRopes::kEndOfTraversal ? kNeverResume : rope;
      }
      if (new_mask != 0) {
        cur = cur + 1;
      } else {
        // Whole-warp escape: one rope load for the shared cursor.
        sp.record_escape(eng, 0, cur);
        cur = sp.escape(cur);
        eng.mem().commit();
      }
    }
  }
};

// ---------------------------------------------------------------------
// Per-lane recursion with call-boundary reconvergence (the naive CUDA
// port). Each step executes one divergent call path: among the lanes at
// the deepest live call level, only those sitting on the leader's tree
// node run; lanes on other nodes (and all shallower lanes) stall. Similar
// traversals (sorted inputs) keep the whole warp in one group -- naive
// recursion is then surprisingly competitive, matching the paper's
// negative sorted-N improvements -- while divergent traversals serialize
// lane by lane.
// ---------------------------------------------------------------------
struct MaxDepthCallReconvergence {
  template <TraversalKernel K>
  void run(WarpEngine<K>& eng, const CallFrames& sp) const {
    using ChildT = typename WarpEngine<K>::ChildT;
    const K& k = eng.kernel();
    const int lanes = eng.lanes();

    struct Frame {
      ChildT self;
      ChildT kids[K::kFanout];
      int cnt = 0;
      int cursor = 0;
      bool visited = false;
    };
    std::vector<std::vector<Frame>> stk(static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      Frame f;
      f.self = {k.root(), k.root_uarg(), k.root_larg()};
      stk[static_cast<std::size_t>(l)].push_back(f);
    }

    for (;;) {
      std::size_t max_depth = 0;
      int alive = 0;
      for (int l = 0; l < lanes; ++l) {
        if (stk[static_cast<std::size_t>(l)].empty()) continue;
        ++alive;
        max_depth = std::max(max_depth, stk[static_cast<std::size_t>(l)].size());
      }
      if (alive == 0) break;

      // The executable group: deepest lanes that share the leader's node.
      NodeId leader_node = kNullNode;
      for (int l = 0; l < lanes; ++l) {
        auto& s = stk[static_cast<std::size_t>(l)];
        if (s.empty() || s.size() != max_depth) continue;
        leader_node = s.back().self.node;
        break;
      }

      eng.stats().note_warp_step(eng.cfg().c_step);
      int active = 0;
      bool any_visit = false, any_call = false;
      std::uint32_t visit_mask = 0, trunc_mask = 0, call_mask = 0,
                    ret_mask = 0;
      for (int l = 0; l < lanes; ++l) {
        auto& s = stk[static_cast<std::size_t>(l)];
        if (s.empty() || s.size() != max_depth ||
            s.back().self.node != leader_node)
          continue;
        ++active;
        Frame& f = s.back();
        if (!f.visited) {
          f.visited = true;
          eng.count_point_visit(l);
          any_visit = true;
          visit_mask |= 1u << l;
          bool descend = k.visit(f.self.node, f.self.uarg, f.self.larg,
                                 eng.state(l), eng.mem(), l);
          if (descend) {
            int cs = K::kNumCallSets > 1
                         ? k.choose_callset(f.self.node, eng.state(l))
                         : 0;
            f.cnt = k.children(f.self.node, f.self.uarg, cs, eng.state(l),
                               f.kids, eng.mem(), l);
          } else {
            f.cnt = 0;
            trunc_mask |= 1u << l;
          }
        } else if (f.cursor < f.cnt) {
          // Call: spill the live frame and descend into the next child.
          any_call = true;
          // c_call is charged once per step (the divergent call path),
          // below; the counter tracks each lane's call.
          eng.stats().note_call(0.0);
          call_mask |= 1u << l;
          Frame child;
          child.self = f.kids[f.cursor++];
          sp.record_frame(eng, l, s.size() - 1);
          s.push_back(child);
        } else {
          // Return: restore the caller's frame from local memory.
          any_call = true;
          ret_mask |= 1u << l;
          sp.record_frame(eng, l, s.size() >= 2 ? s.size() - 2 : 0);
          s.pop_back();
        }
        eng.stats().note_stack_depth(s.size());
      }
      eng.stats().note_active_lanes(active);
      eng.profile_step(static_cast<std::uint32_t>(max_depth), active);
      if (any_visit) eng.stats().note_visit_cycles(eng.cfg().c_visit);
      if (any_call) eng.stats().note_call_cycles(eng.cfg().c_call);
      eng.mem().commit();
      const auto depth = static_cast<std::uint32_t>(max_depth);
      if (visit_mask != 0)
        eng.emit(obs::TraceEventKind::kVisit, leader_node, visit_mask, depth);
      if (trunc_mask != 0)
        eng.emit(obs::TraceEventKind::kTruncate, leader_node, trunc_mask,
                 depth);
      if (call_mask != 0)
        eng.emit(obs::TraceEventKind::kCall, leader_node, call_mask,
                 depth + 1);
      if (ret_mask != 0)
        eng.emit(obs::TraceEventKind::kReturn, leader_node, ret_mask,
                 depth - 1);
    }
  }
};

}  // namespace tt
