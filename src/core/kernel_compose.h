// Traversal fusion (Sakka & Kulkarni, PAPERS.md): compose two
// TraversalKernels that walk the SAME tree into one FusedKernel whose
// visit runs both payloads per node, so each node record is loaded once
// instead of twice. The composition rule is the paper's merged
// truncation: the fused traversal truncates at a node only when *both*
// constituents truncate there.
//
// When only one constituent truncates, the walk continues for the other;
// the truncated side must then contribute nothing inside the skipped
// subtree. With the left-biased DFS linearization every spatial builder
// emits, "inside n's subtree" is the contiguous id interval
// (n, rope[n]) -- exactly what the constituents' escape-index ropes
// (core/static_ropes.h) encode. Each constituent therefore carries a
// per-lane *skip interval* in the fused State: set to (n, rope[n]) when
// the constituent truncates at n, consulted (one compare pair, no memory
// traffic) before running its payload. Because every schedule visits a
// lane's nodes in increasing DFS preorder (DESIGN.md section 3.5), a
// skip interval self-expires once the walk moves past its end; it never
// needs resetting, and nested truncations simply overwrite a dead
// interval.
//
// Per-constituent visit sequences -- node ids, argument values, state
// mutation order -- are identical to the constituents' solo runs under
// every variant, which is why fused results are byte-identical to
// sequential execution (pinned by tests/core/kernel_compose_test.cpp and
// the variant fuzzer). What changes is the cost: shared node loads are
// served once (WarpMemory shared-load elision, keyed on
// kSharedNodeLoads), and the tree is walked once instead of twice, which
// is where the visit/mem_stall bucket savings in the schema-v8 fusion
// block come from.
//
// Requirements on the constituents (checked at compile time / construct
// time):
//   * both StacklessCompatibleKernel: unguided (one call set), no LArg,
//     uarg_at(n) recomputable per node, installed ropes + node buffers.
//     The fused kernel is then itself stackless-compatible, so it
//     qualifies for every variant its fanout allows.
//   * same fanout, same point count, same root, identical (non-empty)
//     rope arrays -- the operational definition of "sharing a tree".
//     Two BH timesteps share ropes when the octree is refit rather than
//     rebuilt (spatial/octree.h refit_octree keeps the topology).
//   * padding-free Result structs (the fused Result is memset before the
//     member assignments so comparisons can memcmp).
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "spatial/linear_tree.h"

namespace tt {

namespace detail {

constexpr std::size_t cstr_len(const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') ++n;
  return n;
}

// Compile-time "fused(<a>+<b>)" so the fused kernel satisfies
// NamedTraversalKernel with a static-storage name.
template <class A, class B>
struct FusedNameHolder {
  static constexpr std::size_t kLen =
      6 + cstr_len(A::kName) + 1 + cstr_len(B::kName) + 2;
  static constexpr std::array<char, kLen + 1> make() {
    std::array<char, kLen + 1> s{};
    std::size_t i = 0;
    for (char c : {'f', 'u', 's', 'e', 'd', '('}) s[i++] = c;
    for (std::size_t k = 0; A::kName[k] != '\0'; ++k) s[i++] = A::kName[k];
    s[i++] = '+';
    for (std::size_t k = 0; B::kName[k] != '\0'; ++k) s[i++] = B::kName[k];
    s[i++] = ')';
    s[i] = '\0';
    return s;
  }
  static constexpr std::array<char, kLen + 1> value = make();
};

}  // namespace detail

template <class A, class B>
  requires StacklessCompatibleKernel<A> && StacklessCompatibleKernel<B> &&
           KernelHasName<A> && KernelHasName<B>
class FusedKernel {
  static_assert(A::kFanout == B::kFanout,
                "fused constituents must walk trees of the same fanout");

 public:
  static constexpr int kFanout = A::kFanout;
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;
  static constexpr const char* kName =
      detail::FusedNameHolder<A, B>::value.data();
  // Constituents issue loads against the same node records; WarpMemory
  // serves the per-lane duplicates once (launch.h checks this marker).
  static constexpr bool kSharedNodeLoads = true;

  struct UArg {
    typename A::UArg a{};
    typename B::UArg b{};
  };
  using LArg = Empty;

  struct State {
    typename A::State a;
    typename B::State b;
    // Per-constituent skip interval (lo, hi): while the lane's cursor is
    // strictly inside it, that constituent's payload is suppressed
    // (its solo run never reached those nodes). (0, 0) = none.
    NodeId lo_a = 0, hi_a = 0;
    NodeId lo_b = 0, hi_b = 0;
  };

  struct Result {
    typename A::Result a;
    typename B::Result b;
  };

  FusedKernel(const A& a, const B& b) : a_(&a), b_(&b) {
    if (a.num_points() != b.num_points())
      throw std::invalid_argument(
          std::string("FusedKernel: constituents disagree on point count (") +
          A::kName + ": " + std::to_string(a.num_points()) + ", " + B::kName +
          ": " + std::to_string(b.num_points()) + ")");
    if (a.root() != b.root())
      throw std::invalid_argument(
          std::string("FusedKernel: constituents disagree on the root node (") +
          A::kName + " + " + B::kName + ")");
    if (a.ropes().rope.empty())
      throw std::invalid_argument(
          std::string("FusedKernel: constituent ") + A::kName +
          " carries no installed ropes (non-DFS relayout?); fusion needs the "
          "escape intervals");
    if (a.ropes().rope != b.ropes().rope)
      throw std::invalid_argument(
          std::string("FusedKernel: constituents do not share a tree (") +
          A::kName + " and " + B::kName +
          " carry different rope arrays); fuse only traversals of the same "
          "tree, or refit instead of rebuilding");
  }

  [[nodiscard]] NodeId root() const { return a_->root(); }
  [[nodiscard]] std::size_t num_points() const { return a_->num_points(); }
  // Each bound is a full-tree worst case, so the union walk fits in the
  // larger of the two.
  [[nodiscard]] int stack_bound() const {
    return a_->stack_bound() > b_->stack_bound() ? a_->stack_bound()
                                                 : b_->stack_bound();
  }
  [[nodiscard]] UArg root_uarg() const {
    return UArg{a_->root_uarg(), b_->root_uarg()};
  }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] UArg uarg_at(NodeId n) const {
    return UArg{a_->uarg_at(n), b_->uarg_at(n)};
  }
  [[nodiscard]] const StaticRopes& ropes() const { return a_->ropes(); }
  // Order-preserving union: the shared-memory node cache fronts every
  // buffer either constituent walks.
  [[nodiscard]] std::vector<std::int32_t> node_buffers() const {
    std::vector<std::int32_t> bufs = a_->node_buffers();
    for (std::int32_t id : b_->node_buffers()) {
      bool seen = false;
      for (std::int32_t have : bufs) seen = seen || have == id;
      if (!seen) bufs.push_back(id);
    }
    return bufs;
  }

  template <class Mem>
  [[nodiscard]] State init(std::uint32_t pid, Mem& mem, int lane) const {
    State st;
    st.a = a_->init(pid, mem, lane);
    st.b = b_->init(pid, mem, lane);
    return st;
  }

  // Merged truncation: descend while either constituent wants to. A
  // constituent whose payload runs and truncates opens its skip interval
  // (n, rope[n]); a constituent already inside its interval contributes
  // nothing (and issues no loads), exactly like its solo run.
  template <class Mem>
  bool visit(NodeId n, const UArg& ua, const LArg&, State& st, Mem& mem,
             int lane) const {
    bool da = false, db = false;
    if (!(st.lo_a < n && n < st.hi_a)) {
      da = a_->visit(n, ua.a, typename A::LArg{}, st.a, mem, lane);
      if (!da) {
        st.lo_a = n;
        st.hi_a = skip_extent(n);
      }
    }
    if (!(st.lo_b < n && n < st.hi_b)) {
      db = b_->visit(n, ua.b, typename B::LArg{}, st.b, mem, lane);
      if (!db) {
        st.lo_b = n;
        st.hi_b = skip_extent(n);
      }
    }
    return da || db;
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  // Child enumeration. A constituent "participates" at n unless it
  // truncated at n itself (lo == n) or n lies inside its skip interval;
  // a non-participating side's child uargs are recomputed via uarg_at
  // (bitwise identical to what its children() would have produced -- the
  // RopeCompatibleKernel contract) so no loads are charged for it. The
  // unguided constituents' child lists are topology-only, hence
  // node-uniform across lanes, which is what lets the lockstep schedule
  // run children() on the leader lane alone.
  template <class Mem>
  int children(NodeId n, const UArg& ua, int, const State& st,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    const bool pa = !(st.lo_a <= n && n < st.hi_a);
    const bool pb = !(st.lo_b <= n && n < st.hi_b);
    std::array<Child<typename A::UArg, typename A::LArg>, kFanout> ca;
    std::array<Child<typename B::UArg, typename B::LArg>, kFanout> cb;
    int na = 0, nb = 0;
    if (pa) na = a_->children(n, ua.a, 0, st.a, ca.data(), mem, lane);
    if (pb) nb = b_->children(n, ua.b, 0, st.b, cb.data(), mem, lane);
    if (pa && pb) {
      if (na != nb)
        throw std::logic_error(
            std::string("FusedKernel: constituents enumerate different "
                        "child counts at node ") +
            std::to_string(n) + " (" + std::to_string(na) + " vs " +
            std::to_string(nb) + "); the trees have diverged");
      for (int i = 0; i < na; ++i) {
        if (ca[i].node != cb[i].node)
          throw std::logic_error(
              std::string("FusedKernel: constituents enumerate different "
                          "children at node ") +
              std::to_string(n) + "; the trees have diverged");
        out[i].node = ca[i].node;
        out[i].uarg = UArg{ca[i].uarg, cb[i].uarg};
        out[i].larg = {};
      }
      return na;
    }
    if (pa) {
      for (int i = 0; i < na; ++i) {
        out[i].node = ca[i].node;
        out[i].uarg = UArg{ca[i].uarg, b_->uarg_at(ca[i].node)};
        out[i].larg = {};
      }
      return na;
    }
    if (pb) {
      for (int i = 0; i < nb; ++i) {
        out[i].node = cb[i].node;
        out[i].uarg = UArg{a_->uarg_at(cb[i].node), cb[i].uarg};
        out[i].larg = {};
      }
      return nb;
    }
    // Lockstep leader lane with both sides truncated while some other
    // lane still descends: reproduce the (node-uniform, topology-only)
    // child list without charging any loads.
    NoopMem noop;
    na = a_->children(n, ua.a, 0, st.a, ca.data(), noop, lane);
    for (int i = 0; i < na; ++i) {
      out[i].node = ca[i].node;
      out[i].uarg = uarg_at(ca[i].node);
      out[i].larg = {};
    }
    return na;
  }

  // memset-then-assign: the padding between the two constituent results
  // (if any) is pinned to zero so fused Result arrays can be memcmp'd.
  [[nodiscard]] Result finish(const State& st) const {
    Result r;
    std::memset(static_cast<void*>(&r), 0, sizeof r);
    r.a = a_->finish(st.a);
    r.b = b_->finish(st.b);
    return r;
  }

  [[nodiscard]] const A& first() const { return *a_; }
  [[nodiscard]] const B& second() const { return *b_; }

 private:
  [[nodiscard]] NodeId skip_extent(NodeId n) const {
    const NodeId r = a_->ropes().rope[static_cast<std::size_t>(n)];
    return r == StaticRopes::kEndOfTraversal
               ? std::numeric_limits<NodeId>::max()
               : r;
  }

  const A* a_;
  const B* b_;
};

// Deduction-friendly constructor wrapper: fuse(a, b) is the composition
// API's entry point.
template <class A, class B>
[[nodiscard]] FusedKernel<A, B> fuse(const A& a, const B& b) {
  return FusedKernel<A, B>(a, b);
}

}  // namespace tt
