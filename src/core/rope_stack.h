// Rope-stack layout helpers (paper section 5.2).
//
// On the simulated device, per-thread rope stacks are *interleaved*: if two
// adjacent lanes are at the same stack level, their entries sit in adjacent
// memory, so stack traffic coalesces exactly when lanes stay in step. A
// warp's region holds `levels x warp_size` entries, level-major.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace tt {

// Byte offset of (level, lane) within a warp's interleaved stack region.
constexpr std::uint64_t interleaved_stack_offset(std::uint64_t level,
                                                 std::uint32_t lane,
                                                 std::uint32_t warp_size,
                                                 std::uint32_t entry_bytes) {
  return (level * warp_size + lane) * entry_bytes;
}

// Contiguous (non-interleaved) layout, used by the ablation benchmark that
// quantifies why the paper interleaves: each lane owns a dense block, so
// same-level entries of different lanes are `levels * entry_bytes` apart
// and never share a 128-byte segment.
constexpr std::uint64_t contiguous_stack_offset(std::uint64_t level,
                                                std::uint32_t lane,
                                                std::uint32_t max_levels,
                                                std::uint32_t entry_bytes) {
  return (static_cast<std::uint64_t>(lane) * max_levels + level) * entry_bytes;
}

// Conservative rope-stack depth bound for a tree: each visit pops one entry
// and pushes at most `fanout`, so the stack never exceeds
// depth * (fanout - 1) + fanout entries along any traversal.
constexpr int rope_stack_bound(int max_tree_depth, int fanout) {
  if (max_tree_depth < 0 || fanout < 1)
    throw std::invalid_argument("rope_stack_bound: bad tree shape");
  return max_tree_depth * (fanout - 1) + fanout + 1;
}

}  // namespace tt
