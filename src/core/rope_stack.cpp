// Layout helpers are constexpr in the header; this translation unit pins
// the symbols' ODR home and hosts compile-time self-checks.
#include "core/rope_stack.h"

namespace tt {

static_assert(interleaved_stack_offset(0, 0, 32, 8) == 0);
static_assert(interleaved_stack_offset(0, 1, 32, 8) == 8,
              "adjacent lanes at one level must be adjacent in memory");
static_assert(interleaved_stack_offset(1, 0, 32, 8) == 256,
              "levels are warp_size entries apart");
static_assert(contiguous_stack_offset(1, 0, 64, 8) == 8);
static_assert(contiguous_stack_offset(0, 1, 64, 8) == 512,
              "contiguous layout separates lanes by their whole block");
static_assert(rope_stack_bound(0, 2) == 3);

}  // namespace tt
