// CPU executors: the original recursive traversal (the paper's input form)
// and its autoropes (iterative, explicit rope-stack) counterpart, each
// runnable single- or multi-threaded over the point loop.
//
// These are real measured implementations -- the CPU side of the paper's
// evaluation -- and double as the semantic reference the GPU simulations
// are tested against.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include <omp.h>

#include "core/traversal_kernel.h"
#include "util/timer.h"

namespace tt {

template <class K>
struct CpuRun {
  std::vector<typename K::Result> results;
  double wall_ms = 0;
  std::uint64_t total_visits = 0;
  std::vector<std::uint32_t> per_point_visits;
};

namespace detail {

template <TraversalKernel K>
void cpu_recurse(const K& k, NodeId n, typename K::UArg ua,
                 typename K::LArg la, typename K::State& st,
                 std::uint32_t& visits) {
  NoopMem mem;
  ++visits;
  if (!k.visit(n, ua, la, st, mem, 0)) return;
  Child<typename K::UArg, typename K::LArg> out[K::kFanout];
  int cs = K::kNumCallSets > 1 ? k.choose_callset(n, st) : 0;
  int cnt = k.children(n, ua, cs, st, out, mem, 0);
  for (int i = 0; i < cnt; ++i)
    cpu_recurse(k, out[i].node, out[i].uarg, out[i].larg, st, visits);
}

// The autoropes form of the same traversal (paper Figures 6/7): children
// pushed in reverse call order, returns become `continue`.
template <TraversalKernel K>
void cpu_autoropes_one(const K& k, typename K::State& st,
                       std::uint32_t& visits,
                       std::vector<Child<typename K::UArg, typename K::LArg>>&
                           stk) {
  NoopMem mem;
  stk.clear();
  stk.push_back({k.root(), k.root_uarg(), k.root_larg()});
  Child<typename K::UArg, typename K::LArg> out[K::kFanout];
  while (!stk.empty()) {
    auto top = stk.back();
    stk.pop_back();
    ++visits;
    if (!k.visit(top.node, top.uarg, top.larg, st, mem, 0)) continue;
    int cs = K::kNumCallSets > 1 ? k.choose_callset(top.node, st) : 0;
    int cnt = k.children(top.node, top.uarg, cs, st, out, mem, 0);
    for (int i = cnt - 1; i >= 0; --i) stk.push_back(out[i]);
  }
}

}  // namespace detail

enum class CpuVariant { kRecursive, kAutoropes };

template <TraversalKernel K>
CpuRun<K> run_cpu(const K& k, CpuVariant variant, int n_threads,
                  bool keep_per_point = false) {
  if (n_threads < 1) throw std::invalid_argument("run_cpu: n_threads < 1");
  const std::size_t n = k.num_points();
  CpuRun<K> run;
  run.results.resize(n);
  if (keep_per_point) run.per_point_visits.assign(n, 0);

  std::uint64_t visits_total = 0;
  WallTimer timer;
#pragma omp parallel num_threads(n_threads) reduction(+ : visits_total)
  {
    std::vector<Child<typename K::UArg, typename K::LArg>> stk;
    stk.reserve(static_cast<std::size_t>(k.stack_bound()));
#pragma omp for schedule(dynamic, 256)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      NoopMem mem;
      auto pid = static_cast<std::uint32_t>(i);
      typename K::State st = k.init(pid, mem, 0);
      std::uint32_t visits = 0;
      if (variant == CpuVariant::kRecursive)
        detail::cpu_recurse(k, k.root(), k.root_uarg(), k.root_larg(), st,
                            visits);
      else
        detail::cpu_autoropes_one(k, st, visits, stk);
      run.results[static_cast<std::size_t>(i)] = k.finish(st);
      if (keep_per_point)
        run.per_point_visits[static_cast<std::size_t>(i)] = visits;
      visits_total += visits;
    }
  }
  run.wall_ms = timer.elapsed_ms();
  run.total_visits = visits_total;
  return run;
}

}  // namespace tt
