// Type-erased launch API over the layered GPU executor, plus the launch
// geometry / composition helpers shared between the monomorphic
// run_gpu_sim (gpu_executors.h) and the batched run_gpu_batch
// (batch_scheduler.h).
//
// Three pieces (DESIGN.md section 3):
//
//   launch_geometry / make_warp_arenas / run_chunk / run_warp_slot
//     The variant-independent launch math -- warp counts, Figure 9b grid,
//     stack-arena sizing and addressing, and the StackPolicy x
//     ConvergencePolicy composition table. run_gpu_sim and the batch
//     scheduler both execute chunks through run_warp_slot, so a launch's
//     simulation is the same code path whether it runs solo or batched
//     (the byte-identity contract of batched runs rests on this).
//
//   KernelHandle / TypedKernelHandle<K>
//     Virtual-dispatch wrapper over the TraversalKernel concept. Every
//     entry point used to be monomorphized per kernel; a handle lets a
//     heterogeneous set of launches live in one container. Handles
//     require the kernel to name itself (K::kName) -- batched
//     diagnostics prefix every error with the owning kernel's name.
//
//   LaunchSpec / LaunchResult
//     One element of a batch: which kernel, in which address space, under
//     which GpuMode, with an optional per-launch trace sink -- and the
//     type-erased per-launch measurement coming back (raw result bytes +
//     isolated KernelStats / TimeBreakdown / SelectionInfo).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <omp.h>

#include "core/convergence_policy.h"
#include "core/profiler.h"
#include "core/stack_policy.h"
#include "core/traversal_kernel.h"
#include "core/variant.h"
#include "core/warp_engine.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "simt/address_space.h"
#include "simt/cost_model.h"
#include "simt/device_config.h"
#include "simt/kernel_stats.h"
#include "simt/l2cache.h"
#include "simt/smem_cache.h"
#include "simt/warp_memory.h"

namespace tt {

// A TraversalKernel that names itself. kernel_display_name()'s
// "unnamed-kernel" fallback is fine for ad-hoc micro kernels running
// through run_gpu_sim, but the type-erased handle API requires the real
// name: batched overflow/error strings are prefixed with it.
template <class K>
concept NamedTraversalKernel =
    TraversalKernel<K> && requires {
      { K::kName } -> std::convertible_to<const char*>;
    };

// ---------------------------------------------------------------------
// Launch geometry shared by the solo and batched executors.
// ---------------------------------------------------------------------

struct LaunchGeometry {
  std::size_t n = 0;        // points
  std::size_t n_warps = 0;  // logical 32-point chunks
  std::size_t grid = 0;     // physical warps (Figure 9b strip-mining)
  int stack_bound = 0;
  std::uint32_t entry_bytes = 0;   // interleaved rope-stack entry
  std::uint64_t per_warp_span = 0; // stack-arena bytes per physical warp
};

template <TraversalKernel K>
[[nodiscard]] LaunchGeometry launch_geometry(const K& k, const DeviceConfig& cfg,
                                       const GpuMode& mode) {
  LaunchGeometry s;
  s.n = k.num_points();
  s.n_warps = (s.n + static_cast<std::size_t>(cfg.warp_size) - 1) /
              static_cast<std::size_t>(cfg.warp_size);
  s.stack_bound = k.stack_bound();
  s.entry_bytes =
      std::max<std::uint32_t>(4, stack_entry_bytes<K>(mode.lockstep));
  // One interleaved stack (or local-memory frame arena) region per warp,
  // plus room for the warp-level entries of the global-lockstep ablation.
  s.per_warp_span =
      static_cast<std::uint64_t>(s.stack_bound + 4) *
      (static_cast<std::uint64_t>(cfg.warp_size) *
           std::max<std::uint32_t>(
               s.entry_bytes, static_cast<std::uint32_t>(cfg.frame_bytes)) +
       12);
  // Figure 9b's strip-mined grid loop: with a finite grid, physical warp p
  // processes chunks p, p + grid, p + 2*grid, ... and keeps its L2 slice
  // (and stack arena) across chunks. Uniform across all compositions.
  s.grid = mode.grid_limit > 0 ? std::min(mode.grid_limit, s.n_warps)
                               : s.n_warps;
  // The stackless family keeps no continuations at all: no arena bytes,
  // and ensure_stack_arena must not be called for these launches.
  if (mode.stackless) s.per_warp_span = 0;
  return s;
}

// The launch's stack arena (idempotent per address space + policy family).
[[nodiscard]] inline BufferId ensure_stack_arena(GpuAddressSpace& space,
                                                 const GpuMode& mode,
                                                 const LaunchGeometry& s) {
  return space.ensure_buffer(mode.autoropes ? "rope_stack" : "local_frames",
                             1, s.per_warp_span * s.n_warps);
}

// Shared-memory bytes the stackless node cache may occupy: what the
// per-warp lockstep stack records (12 bytes per level, stack_bound + 4
// levels, one stack per resident warp) used to take from the SM, capped
// at the SM's shared memory. mode.cache_bytes pins an explicit capacity
// for the ablation sweep.
[[nodiscard]] inline std::size_t stackless_cache_bytes(
    const DeviceConfig& cfg, const LaunchGeometry& s, const GpuMode& mode) {
  if (mode.cache_bytes > 0) return mode.cache_bytes;
  const std::size_t freed =
      static_cast<std::size_t>(cfg.resident_warps_per_sm) *
      static_cast<std::size_t>(s.stack_bound + 4) * 12;
  return std::min<std::size_t>(freed,
                               static_cast<std::size_t>(cfg.shared_mem_per_sm));
}

// Launch-scope context of a stackless launch: the installed rope array's
// buffer id in the launch's address space, and the (optional) modelled
// shared-memory node cache every slot's WarpMemory checks before L2.
struct StacklessCtx {
  std::int32_t rope_buf = -1;
  const SmemNodeCache* cache = nullptr;
};

// Stack-policy instances addressing one physical warp's arena slice.
struct WarpArenas {
  LaneRopeStack lane_stack;
  WarpStack warp_stack;
  CallFrames frames;
};

[[nodiscard]] inline WarpArenas make_warp_arenas(const LaunchGeometry& s,
                                                 const DeviceConfig& cfg,
                                                 const GpuMode& mode,
                                                 std::uint64_t base) {
  WarpArenas a;
  a.lane_stack = LaneRopeStack{
      base, s.entry_bytes, static_cast<std::uint32_t>(cfg.warp_size),
      static_cast<std::uint32_t>(s.stack_bound + 4), mode.contiguous_stack};
  a.warp_stack = WarpStack{
      base,
      base + static_cast<std::uint64_t>(s.stack_bound + 4) *
                 static_cast<std::uint64_t>(cfg.warp_size) * s.entry_bytes,
      s.entry_bytes, static_cast<std::uint32_t>(cfg.warp_size),
      mode.lockstep_stack_global};
  a.frames = CallFrames{base, static_cast<std::uint32_t>(cfg.frame_bytes),
                        static_cast<std::uint32_t>(cfg.warp_size)};
  return a;
}

// The composition table: which StackPolicy x ConvergencePolicy pair a
// (resolved) GpuMode dispatches one chunk to. auto_select never reaches
// here -- run_gpu_sim / run_gpu_batch resolve it per launch first. The
// stackless cases need the launch's StacklessCtx (rope buffer id) and an
// eligible kernel; callers enforce eligibility up front, so hitting the
// ineligible path here is a composition-table bug.
template <TraversalKernel K>
void run_chunk(WarpEngine<K>& eng, const GpuMode& mode, const WarpArenas& a,
               const StacklessCtx* sctx = nullptr) {
  switch (mode.variant()) {
    case Variant::kAutoNolockstep:
      LoopHeadReconvergence{}.run(eng, a.lane_stack);
      break;
    case Variant::kAutoLockstep:
      WarpAndTruncation{}.run(eng, a.warp_stack);
      break;
    case Variant::kRecNolockstep:
      MaxDepthCallReconvergence{}.run(eng, a.frames);
      break;
    case Variant::kRecLockstep:
      WarpAndTruncation{}.run(eng, a.frames);
      break;
    case Variant::kStacklessLockstep:
    case Variant::kStacklessNolockstep:
      if constexpr (StacklessCompatibleKernel<K>) {
        if (sctx == nullptr || sctx->rope_buf < 0)
          throw std::logic_error(
              "run_chunk: stackless variant launched without a StacklessCtx");
        const StacklessRope sp{&eng.kernel().ropes(), sctx->rope_buf};
        if (mode.lockstep)
          WarpAndTruncation{}.run(eng, sp);
        else
          LoopHeadReconvergence{}.run(eng, sp);
      } else {
        throw std::logic_error(
            "run_chunk: stackless variant on an ineligible kernel");
      }
      break;
    case Variant::kIndexWalk:
      if constexpr (kernel_index_walk_eligible<K>) {
        LoopHeadReconvergence{}.run(eng, IndexWalk{&eng.kernel().ropes()});
      } else {
        throw std::logic_error(
            "run_chunk: index_walk on an ineligible kernel");
      }
      break;
    case Variant::kAutoSelect:
      throw std::logic_error(
          "run_chunk: auto_select reached the composition switch");
  }
}

// Simulate every chunk assigned to physical warp slot `p`: construct the
// slot's memory front end, engine and arena policies once, then walk
// chunks w = p, p + grid, ... -- exactly the body of run_gpu_sim's warp
// lambda. Batched launches run the same function per slot, with their own
// stats / l2 slice / counters, which is what makes a batched launch's
// per-kernel numbers byte-identical to its solo run.
template <TraversalKernel K>
void run_warp_slot(const K& k, const GpuAddressSpace& space,
                   const DeviceConfig& cfg, const GpuMode& mode,
                   const LaunchGeometry& shape, std::uint64_t stack_base0,
                   std::size_t p, KernelStats& stats, L2Cache* l2,
                   obs::TraceSink* trace, obs::ProfileSink* profile,
                   OverflowReport& overflow,
                   typename K::Result* results,
                   std::uint32_t* per_point_visits,
                   std::uint32_t* per_warp_pops,
                   std::uint32_t kernel_id = kSoloKernel,
                   const StacklessCtx* sctx = nullptr) {
  WarpMemory mem(space, cfg, l2, stats, sctx ? sctx->cache : nullptr);
  // Fused kernels share node records between constituents; serve the
  // duplicate per-lane loads once (core/kernel_compose.h).
  if constexpr (kernel_shares_node_loads<K>) mem.set_shared_load_elision(true);
  const std::uint64_t base = stack_base0 + shape.per_warp_span * p;
  obs::WarpTracer* tr = trace ? &trace->ring(omp_get_thread_num()) : nullptr;
  obs::ProfileCollector* pc =
      profile ? &profile->collector(omp_get_thread_num()) : nullptr;
  WarpEngine<K> eng(k, cfg, mem, stats, overflow, shape.stack_bound, tr, pc);
  const WarpArenas arenas = make_warp_arenas(shape, cfg, mode, base);

  for (std::size_t w = p; w < shape.n_warps; w += shape.grid) {
    if (tr) tr->begin_warp(static_cast<std::uint32_t>(w));
    WarpRange range;
    range.begin = static_cast<std::uint32_t>(w * cfg.warp_size);
    range.end = static_cast<std::uint32_t>(
        std::min<std::size_t>(shape.n, (w + 1) * cfg.warp_size));
    eng.begin_chunk(static_cast<std::uint32_t>(w), range,
                    results + range.begin,
                    mode.lockstep ? nullptr : per_point_visits + range.begin,
                    mode.lockstep ? &per_warp_pops[w] : nullptr, kernel_id);
    run_chunk(eng, mode, arenas, sctx);
    eng.end_chunk();
    if (tr) trace->commit(static_cast<std::uint32_t>(w), *tr);
  }
}

// The sharded sibling of run_warp_slot: slot `p` walks an *explicit* chunk
// list (warps[p], warps[p + grid], ...) instead of the dense p, p + grid,
// ... sequence -- how a device of a DeviceGroup (core/device_group.h) runs
// just the logical warps assigned to it. Each chunk's traversal is
// identical to the solo run's (same kernel, same warp range, same
// engine/arena construction), so results and visit counters land
// byte-identical into the canonical warp-indexed arrays; only the L2 /
// stats side, which is slot-state, sees the different walk order.
template <TraversalKernel K>
void run_warp_list(const K& k, const GpuAddressSpace& space,
                   const DeviceConfig& cfg, const GpuMode& mode,
                   const LaunchGeometry& shape, std::uint64_t stack_base0,
                   std::span<const std::uint32_t> warps, std::size_t grid,
                   std::size_t p, KernelStats& stats, L2Cache* l2,
                   obs::TraceSink* trace, obs::ProfileSink* profile,
                   OverflowReport& overflow,
                   typename K::Result* results,
                   std::uint32_t* per_point_visits,
                   std::uint32_t* per_warp_pops,
                   std::uint32_t kernel_id = kSoloKernel,
                   const StacklessCtx* sctx = nullptr) {
  WarpMemory mem(space, cfg, l2, stats, sctx ? sctx->cache : nullptr);
  if constexpr (kernel_shares_node_loads<K>) mem.set_shared_load_elision(true);
  const std::uint64_t base = stack_base0 + shape.per_warp_span * p;
  obs::WarpTracer* tr = trace ? &trace->ring(omp_get_thread_num()) : nullptr;
  obs::ProfileCollector* pc =
      profile ? &profile->collector(omp_get_thread_num()) : nullptr;
  WarpEngine<K> eng(k, cfg, mem, stats, overflow, shape.stack_bound, tr, pc);
  const WarpArenas arenas = make_warp_arenas(shape, cfg, mode, base);

  for (std::size_t i = p; i < warps.size(); i += grid) {
    const std::size_t w = warps[i];
    if (tr) tr->begin_warp(static_cast<std::uint32_t>(w));
    WarpRange range;
    range.begin = static_cast<std::uint32_t>(w * cfg.warp_size);
    range.end = static_cast<std::uint32_t>(
        std::min<std::size_t>(shape.n, (w + 1) * cfg.warp_size));
    eng.begin_chunk(static_cast<std::uint32_t>(w), range,
                    results + range.begin,
                    mode.lockstep ? nullptr : per_point_visits + range.begin,
                    mode.lockstep ? &per_warp_pops[w] : nullptr, kernel_id);
    run_chunk(eng, mode, arenas, sctx);
    eng.end_chunk();
    if (tr) trace->commit(static_cast<std::uint32_t>(w), *tr);
  }
}

// ---------------------------------------------------------------------
// Type-erased launch API.
// ---------------------------------------------------------------------

// Per-launch execution state behind a virtual boundary: typed result
// storage plus the untyped counters / overflow report the scheduler needs.
// Created by KernelHandle::prepare with a *resolved* mode (no
// auto_select), which fixes the shape and reserves the stack arena.
class LaunchRun {
 public:
  virtual ~LaunchRun() = default;

  LaunchGeometry shape;
  // Non-lockstep: per-point node visits; lockstep: per-warp pop counts
  // (same split as GpuRun).
  std::vector<std::uint32_t> per_point_visits;
  std::vector<std::uint32_t> per_warp_pops;
  OverflowReport overflow;

  // Simulate every chunk assigned to physical warp slot `p` (< shape.grid).
  virtual void run_slot(std::size_t p, KernelStats& stats, L2Cache* l2) = 0;
  // Sharded execution (core/device_group.h): slot `p` of a device whose
  // assigned chunk list is `warps` and whose physical grid is `grid` walks
  // warps[p], warps[p + grid], ... Results/counters land in the same
  // canonical warp-indexed storage as run_slot.
  virtual void run_shard_slot(std::span<const std::uint32_t> warps,
                              std::size_t grid, std::size_t p,
                              KernelStats& stats, L2Cache* l2) = 0;
  [[nodiscard]] virtual const void* result_data() const = 0;
  [[nodiscard]] virtual std::size_t result_stride() const = 0;
};

// Virtual-dispatch wrapper over a NamedTraversalKernel. The handle does
// not own the kernel or its tree/point data by default; pass `keep_alive`
// to make_kernel_handle when the handle should extend their lifetime
// (e.g. the batched harness builds trees per launch and parks them there).
class KernelHandle {
 public:
  virtual ~KernelHandle() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual std::size_t num_points() const = 0;
  [[nodiscard]] virtual int stack_bound() const = 0;
  [[nodiscard]] virtual std::size_t result_stride() const = 0;

  // Whether this kernel can execute variant `v` (always true for the
  // stack-based variants; the stackless family needs a rope-carrying
  // unguided kernel -- see kernel_variant_eligible in static_ropes.h).
  // Batched/sharded dispatch pre-checks this so an ineligible pairing
  // fails one launch gracefully instead of throwing out of the pool.
  [[nodiscard]] virtual bool variant_eligible(Variant v) const = 0;

  // The canonical ineligibility message for (this kernel, v) -- empty when
  // the pair can run. Unlike variant_eligible this also covers the
  // runtime empty-ropes case (core/static_ropes.h), so batched admission
  // reports the same string run_gpu_sim would throw.
  [[nodiscard]] virtual std::string variant_ineligible_reason(
      Variant v) const = 0;

  // The section-4.4 similarity sampler (auto_select resolution).
  [[nodiscard]] virtual ProfileReport profile(std::size_t samples,
                                              std::uint64_t seed) const = 0;

  // Size the launch, reserve its stack arena in `space` (same buffer names
  // and addresses as run_gpu_sim would) and allocate result/counter
  // storage. `mode` must be resolved -- throws std::invalid_argument on a
  // mode still carrying auto_select.
  [[nodiscard]] virtual std::unique_ptr<LaunchRun> prepare(
      GpuAddressSpace& space, const DeviceConfig& cfg, const GpuMode& mode,
      obs::TraceSink* trace, obs::ProfileSink* profile,
      std::uint32_t kernel_id) const = 0;
};

template <NamedTraversalKernel K>
class TypedLaunchRun final : public LaunchRun {
 public:
  TypedLaunchRun(const K& k, GpuAddressSpace& space, const DeviceConfig& cfg,
                 GpuMode mode, obs::TraceSink* trace,
                 obs::ProfileSink* profile, std::uint32_t kernel_id)
      : k_(&k),
        space_(&space),
        cfg_(&cfg),
        mode_(mode),
        trace_(trace),
        profile_(profile),
        kernel_id_(kernel_id) {
    shape = launch_geometry(k, cfg, mode);
    results_.resize(shape.n);
    if (mode.lockstep)
      per_warp_pops.assign(shape.n_warps, 0);
    else
      per_point_visits.assign(shape.n, 0);
    if (mode.stackless) {
      // No stack arena. Register the rope array (launch-time scratch, like
      // the arena -- never part of the kernel's upload bytes) and build
      // the shared-memory node cache from the freed stack bytes. This
      // constructor runs serially (prepare), so ensure_buffer is safe.
      // Ineligible pairings throw the canonical reason string
      // (core/static_ropes.h), same spelling as run_gpu_sim's.
      const std::string why =
          kernel_variant_ineligible_reason(k, mode.variant());
      if (!why.empty()) throw std::invalid_argument("launch: " + why);
      if constexpr (StacklessCompatibleKernel<K>) {
        sctx_.rope_buf = space.ensure_buffer(
            "ropes", 4, static_cast<std::uint64_t>(k.ropes().rope.size()));
        if (mode.smem_node_cache) {
          cache_ = SmemNodeCache::build(space, k.node_buffers(),
                                        k.ropes().rope.size(),
                                        stackless_cache_bytes(cfg, shape, mode));
          sctx_.cache = &cache_;
        }
      }
    } else {
      BufferId buf = ensure_stack_arena(space, mode, shape);
      stack_base0_ = space.addr(buf, 0);
    }
  }

  void run_slot(std::size_t p, KernelStats& stats, L2Cache* l2) override {
    run_warp_slot(*k_, *space_, *cfg_, mode_, shape, stack_base0_, p, stats,
                  l2, trace_, profile_, overflow, results_.data(),
                  mode_.lockstep ? nullptr : per_point_visits.data(),
                  mode_.lockstep ? per_warp_pops.data() : nullptr,
                  kernel_id_, mode_.stackless ? &sctx_ : nullptr);
  }

  void run_shard_slot(std::span<const std::uint32_t> warps, std::size_t grid,
                      std::size_t p, KernelStats& stats, L2Cache* l2) override {
    run_warp_list(*k_, *space_, *cfg_, mode_, shape, stack_base0_, warps,
                  grid, p, stats, l2, trace_, profile_, overflow,
                  results_.data(),
                  mode_.lockstep ? nullptr : per_point_visits.data(),
                  mode_.lockstep ? per_warp_pops.data() : nullptr,
                  kernel_id_, mode_.stackless ? &sctx_ : nullptr);
  }

  [[nodiscard]] const void* result_data() const override {
    return results_.data();
  }
  [[nodiscard]] std::size_t result_stride() const override {
    return sizeof(typename K::Result);
  }

 private:
  const K* k_;
  const GpuAddressSpace* space_;
  const DeviceConfig* cfg_;
  GpuMode mode_;
  obs::TraceSink* trace_;
  obs::ProfileSink* profile_;
  std::uint32_t kernel_id_;
  std::uint64_t stack_base0_ = 0;
  std::vector<typename K::Result> results_;
  // Stackless launches only: rope buffer id + modelled node cache.
  StacklessCtx sctx_;
  SmemNodeCache cache_;
};

template <NamedTraversalKernel K>
class TypedKernelHandle final : public KernelHandle {
 public:
  explicit TypedKernelHandle(const K& k,
                             std::shared_ptr<const void> keep_alive = nullptr)
      : k_(&k), keep_alive_(std::move(keep_alive)) {}

  [[nodiscard]] const char* name() const override { return K::kName; }
  [[nodiscard]] std::size_t num_points() const override {
    return k_->num_points();
  }
  [[nodiscard]] int stack_bound() const override { return k_->stack_bound(); }
  [[nodiscard]] std::size_t result_stride() const override {
    return sizeof(typename K::Result);
  }

  [[nodiscard]] bool variant_eligible(Variant v) const override {
    return kernel_variant_eligible<K>(v);
  }

  [[nodiscard]] std::string variant_ineligible_reason(Variant v) const override {
    return kernel_variant_ineligible_reason(*k_, v);
  }

  [[nodiscard]] ProfileReport profile(std::size_t samples,
                                      std::uint64_t seed) const override {
    return profile_similarity(*k_, samples, seed);
  }

  [[nodiscard]] std::unique_ptr<LaunchRun> prepare(
      GpuAddressSpace& space, const DeviceConfig& cfg, const GpuMode& mode,
      obs::TraceSink* trace, obs::ProfileSink* profile,
      std::uint32_t kernel_id) const override {
    if (mode.auto_select)
      throw std::invalid_argument(
          "KernelHandle::prepare: mode still carries auto_select; resolve "
          "the launch decision first (run_gpu_batch does)");
    return std::make_unique<TypedLaunchRun<K>>(*k_, space, cfg, mode, trace,
                                               profile, kernel_id);
  }

 private:
  const K* k_;
  std::shared_ptr<const void> keep_alive_;  // optional owner of *k_'s data
};

template <NamedTraversalKernel K>
[[nodiscard]] std::shared_ptr<KernelHandle> make_kernel_handle(
    const K& k, std::shared_ptr<const void> keep_alive = nullptr) {
  return std::make_shared<TypedKernelHandle<K>>(k, std::move(keep_alive));
}

// One element of a batched launch.
struct LaunchSpec {
  std::shared_ptr<KernelHandle> kernel;
  // The launch's address space. Must hold the same buffers the kernel's
  // solo run registered (tree + points), so arena addresses -- and
  // therefore every modelled memory event -- match the solo run.
  GpuAddressSpace* space = nullptr;
  // May carry auto_select; run_gpu_batch resolves it per launch through
  // KernelHandle::profile with the mode's profile_samples/profile_seed.
  GpuMode mode;
  obs::TraceSink* trace = nullptr;      // optional per-launch trace
  obs::ProfileSink* profile = nullptr;  // optional per-launch profiler
};

// Type-erased per-launch measurement of a batched run. Mirrors GpuRun<K>
// with raw result bytes instead of a typed vector; stats / time /
// selection stay isolated per launch (only transfer accounting is
// batch-level, see batch_scheduler.h).
struct LaunchResult {
  std::string kernel_name;
  std::size_t batch_index = 0;
  Variant variant = Variant::kAutoNolockstep;  // executed composition
  KernelStats stats;
  TimeBreakdown time;
  std::size_t n_points = 0;
  std::size_t n_warps = 0;
  std::vector<std::byte> results;  // n_points * result_stride bytes
  std::size_t result_stride = 0;
  std::vector<std::uint32_t> per_point_visits;
  std::vector<std::uint32_t> per_warp_pops;
  std::optional<SelectionInfo> selection;
  // Set when the spec carried a ProfileSink: the launch's cycle-attribution
  // profile (obs/profile.h), sampling charge included for auto_select.
  std::optional<obs::ProfileReport> profile;
  // Empty on success; "kernel <name> (batch <i>): ..." on failure. A
  // failed launch's numbers are zeroed; sibling launches stay valid.
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }

  // Typed view of the result bytes; null when R does not match the stride.
  template <class R>
  [[nodiscard]] const R* results_as() const {
    if (sizeof(R) != result_stride) return nullptr;
    return reinterpret_cast<const R*>(results.data());
  }

  // The paper's "Avg. # Nodes" column (same split as GpuRun).
  [[nodiscard]] double avg_nodes() const {
    if (!per_warp_pops.empty()) {
      double s = 0;
      for (auto v : per_warp_pops) s += v;
      return s / static_cast<double>(per_warp_pops.size());
    }
    double s = 0;
    for (auto v : per_point_visits) s += v;
    return per_point_visits.empty()
               ? 0
               : s / static_cast<double>(per_point_visits.size());
  }
};

}  // namespace tt
