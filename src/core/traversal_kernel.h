// The traversal-kernel contract: what an algorithm supplies so the
// framework's executors (cpu_executors.h, gpu_executors.h) can run it under
// every variant the paper evaluates.
//
// A kernel is the runtime image of the paper's *pseudo-tail-recursive*
// traversal function (Figure 1 / section 3.2): all work happens on the way
// down, so the only state carried between recursive calls is (a) the
// per-point State living in registers and (b) the call arguments, which the
// autoropes transformation moves onto the rope stack. Arguments split into
//
//   UArg -- values that depend only on the node/path (e.g. Barnes-Hut's
//           squared cell size, quartered per level, Figure 9). Under
//           lockstep traversal every lane sits at the same node, so UArgs
//           are stored once per warp in shared memory (section 5.2).
//   LArg -- values that depend on the point (e.g. the subtree distance
//           bound a vantage-point search computes from the parent's
//           vantage distance). These stay per-lane: the interleaved global
//           rope stack holds them even under lockstep.
//
// Required interface (checked by the TraversalKernel concept below):
//
//   struct K {
//     struct State;   // mutable per-point traversal state (registers)
//     struct Result;  // copy-out value per point
//     struct UArg;    // node-uniform rope-stack argument (Empty if none)
//     struct LArg;    // per-lane rope-stack argument   (Empty if none)
//     static constexpr int  kFanout;          // max children per node
//     static constexpr int  kNumCallSets;     // 1 => unguided (section 3.2.1)
//     static constexpr bool kCallSetsEquivalent;  // section 4.3 annotation
//
//     NodeId root() const;
//     std::size_t num_points() const;
//     UArg root_uarg() const;  LArg root_larg() const;
//     int stack_bound() const;  // max rope-stack entries per traversal
//
//     template <class Mem> State init(uint32_t pid, Mem&, int lane) const;
//     // Visit node n for this point: truncation test + update. Returns
//     // true iff the traversal should descend into n's children.
//     template <class Mem> bool visit(NodeId n, const UArg&, const LArg&,
//                                     State&, Mem&, int lane) const;
//     int choose_callset(NodeId n, const State&) const;
//     // Enumerate children of n in the visit order of `callset`, with
//     // their arguments (all computed now -- argument evaluation must not
//     // depend on descendants' updates). Returns the count.
//     template <class Mem> int children(NodeId n, const UArg&, int callset,
//                                       const State&,
//                                       Child<UArg, LArg>* out, Mem&,
//                                       int lane) const;
//     Result finish(const State&) const;
//   };
//
// Mem is the memory recorder: WarpMemory on the simulated GPU, NoopMem on
// the CPU (compiles to nothing).
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>

#include "spatial/linear_tree.h"

namespace tt {

// Placeholder for kernels without a given argument channel.
struct Empty {};

template <class UA, class LA>
struct Child {
  NodeId node = kNullNode;
  UA uarg{};
  LA larg{};
};

// Memory recorder that compiles away; used by the CPU executors and by any
// context that only wants the traversal's semantics.
struct NoopMem {
  void lane_load(int, std::int32_t, std::uint64_t) {}
  void lane_load_raw(int, std::uint64_t, std::uint32_t) {}
  std::uint64_t commit() { return 0; }
};

template <class K>
concept TraversalKernel = requires(const K k, std::uint32_t pid, NoopMem mem,
                                   typename K::State st,
                                   Child<typename K::UArg, typename K::LArg>*
                                       out) {
  { K::kFanout } -> std::convertible_to<int>;
  { K::kNumCallSets } -> std::convertible_to<int>;
  { K::kCallSetsEquivalent } -> std::convertible_to<bool>;
  { k.root() } -> std::same_as<NodeId>;
  { k.num_points() } -> std::convertible_to<std::size_t>;
  { k.stack_bound() } -> std::convertible_to<int>;
  { k.root_uarg() } -> std::same_as<typename K::UArg>;
  { k.root_larg() } -> std::same_as<typename K::LArg>;
  { k.init(pid, mem, 0) } -> std::same_as<typename K::State>;
  {
    k.visit(NodeId{0}, k.root_uarg(), k.root_larg(), st, mem, 0)
  } -> std::same_as<bool>;
  { k.choose_callset(NodeId{0}, st) } -> std::convertible_to<int>;
  {
    k.children(NodeId{0}, k.root_uarg(), 0, st, out, mem, 0)
  } -> std::convertible_to<int>;
  { k.finish(st) } -> std::same_as<typename K::Result>;
};

template <class K>
inline constexpr bool kernel_has_lane_arg =
    !std::is_same_v<typename K::LArg, Empty>;

template <class K>
inline constexpr bool kernel_has_uniform_arg =
    !std::is_same_v<typename K::UArg, Empty>;

template <class K>
concept KernelHasName = requires {
  { K::kName } -> std::convertible_to<const char*>;
};

// Display name for error messages: K::kName when the kernel declares one,
// a placeholder otherwise (micro/test kernels need not name themselves).
template <class K>
const char* kernel_display_name() {
  if constexpr (KernelHasName<K>)
    return K::kName;
  else
    return "unnamed-kernel";
}

// Opt-in marker (K::kSharedNodeLoads == true) telling the memory recorder
// that distinct payloads inside this kernel issue loads against the same
// node records, so duplicate per-lane (buffer, address) loads within one
// commit window may be served once. FusedKernel sets it; monolithic
// kernels never re-load a record inside a window, so their accounting is
// unchanged either way.
template <class K>
concept KernelDeclaresSharedNodeLoads = requires {
  { K::kSharedNodeLoads } -> std::convertible_to<bool>;
};

template <class K>
inline constexpr bool kernel_shares_node_loads = [] {
  if constexpr (KernelDeclaresSharedNodeLoads<K>)
    return static_cast<bool>(K::kSharedNodeLoads);
  else
    return false;
}();

}  // namespace tt
